package chaos

import (
	"strings"
	"testing"

	"kloc/internal/cluster"
	"kloc/internal/fault"
	"kloc/internal/sim"
)

// small returns a campaign config sized for test wall-clock: few
// schedules, short windows, tiny platform.
func small(target string) Config {
	return Config{
		Target:           target,
		Schedules:        8,
		Seed:             42,
		MaxInjections:    4,
		DeterminismEvery: 4,
		ScaleDiv:         512,
		Duration:         4 * sim.Millisecond,
		SettleBound:      30 * sim.Millisecond,
	}
}

func TestCleanClusterCampaign(t *testing.T) {
	sum, arts, err := RunCampaign(small(TargetCluster))
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if !sum.Clean || len(sum.Violations) != 0 || len(arts) != 0 {
		t.Fatalf("expected clean campaign, got violations %+v", sum.Violations)
	}
	if sum.Schedules != 8 || sum.Injections == 0 {
		t.Fatalf("summary bookkeeping off: %+v", sum)
	}
	if sum.DeterminismRuns != 2 {
		t.Fatalf("determinism runs = %d, want 2 (every 4th of 8)", sum.DeterminismRuns)
	}
	if sum.SchemaVersion != SchemaVersion || sum.Experiment != "chaos" {
		t.Fatalf("summary metadata off: %+v", sum)
	}
	want := []string{OracleRunError, OracleDrain, OracleReadmit, OracleOutstanding, OracleTerminate, OracleBreaker, OracleDeterminism}
	if len(sum.OraclesChecked) != len(want) {
		t.Fatalf("oracles checked = %v, want %v", sum.OraclesChecked, want)
	}
	for i, id := range want {
		if sum.OraclesChecked[i] != id {
			t.Fatalf("oracles checked = %v, want %v", sum.OraclesChecked, want)
		}
	}
}

func TestCleanMachineCampaign(t *testing.T) {
	cfg := small(TargetMachine)
	cfg.Schedules = 4
	sum, arts, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if !sum.Clean || len(arts) != 0 {
		t.Fatalf("expected clean campaign, got violations %+v", sum.Violations)
	}
	for _, id := range []string{OracleJournal, OracleSanitizer} {
		found := false
		for _, got := range sum.OraclesChecked {
			if got == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("machine campaign missing oracle %s: %v", id, sum.OraclesChecked)
		}
	}
}

// TestBugCampaignCaughtMinimizedReplayed is the end-to-end oracle
// self-test: re-introduce the hedge-slot-leak defect, watch a
// conservation oracle catch it, shrink the schedule to a tiny repro,
// and prove the artifact replays to the byte.
func TestBugCampaignCaughtMinimizedReplayed(t *testing.T) {
	cfg := small(TargetCluster)
	cfg.Schedules = 10
	cfg.Bug = cluster.BugHedgeSlotLeak
	sum, arts, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if sum.Clean || len(arts) == 0 {
		t.Fatalf("bug fixture %s not caught by any oracle", cfg.Bug)
	}
	rec := sum.Violations[0]
	if rec.Oracle != OracleOutstanding && rec.Oracle != OracleTerminate {
		t.Fatalf("caught by %s, expected a conservation oracle: %+v", rec.Oracle, rec)
	}
	if rec.MinimizedInjections > 3 {
		t.Fatalf("minimized to %d injections, want <= 3: %+v", rec.MinimizedInjections, rec)
	}
	if rec.MinimizeProbes == 0 || rec.Artifact == "" {
		t.Fatalf("minimization bookkeeping off: %+v", rec)
	}

	art := arts[0]
	if art.Filename() != rec.Artifact || art.Oracle != rec.Oracle || art.Bug != cfg.Bug {
		t.Fatalf("artifact/record mismatch: %+v vs %+v", art, rec)
	}

	// The artifact must survive a JSON round trip...
	data, err := art.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	parsed, err := ParseArtifact(data)
	if err != nil {
		t.Fatalf("ParseArtifact: %v", err)
	}
	if parsed.Schedule.Hash() != art.Schedule.Hash() || parsed.TraceFNV != art.TraceFNV {
		t.Fatalf("artifact round trip drifted: %+v vs %+v", parsed, art)
	}

	// ...and replay to the same violation with byte-identical traces,
	// twice in a row.
	for pass := 0; pass < 2; pass++ {
		rep, err := Replay(parsed)
		if err != nil {
			t.Fatalf("Replay pass %d: %v", pass, err)
		}
		if rep.Violation == nil {
			t.Fatalf("replay pass %d: violation did not reproduce", pass)
		}
		if !rep.OracleMatch {
			t.Fatalf("replay pass %d: reproduced %s, artifact says %s", pass, rep.Violation.Oracle, art.Oracle)
		}
		if !rep.Deterministic {
			t.Fatalf("replay pass %d: traces diverged across re-execution", pass)
		}
		if !rep.TraceMatch {
			t.Fatalf("replay pass %d: trace fnv %016x, artifact pinned %016x", pass, rep.TraceFNV, art.TraceFNV)
		}
	}
}

func TestBugProbeLeakCaught(t *testing.T) {
	// The probe leak needs a longer causal chain than the slot leak
	// (breaker opens, re-arms half-open, probes through a losing hedge
	// leg), so this campaign uses a seed whose first schedules are
	// known to walk it.
	cfg := small(TargetCluster)
	cfg.Schedules = 5
	cfg.Seed = 99
	cfg.MaxInjections = 6
	cfg.DeterminismEvery = -1
	cfg.Bug = cluster.BugProbeLeak
	sum, _, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if sum.Clean {
		t.Fatalf("bug fixture %s not caught by any oracle", cfg.Bug)
	}
	if got := sum.Violations[0].Oracle; got != OracleBreaker {
		t.Fatalf("caught by %s, want %s: %+v", got, OracleBreaker, sum.Violations[0])
	}
	if !strings.Contains(sum.Violations[0].Detail, "probe") {
		t.Fatalf("detail does not mention probes: %q", sum.Violations[0].Detail)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	cfg := small(TargetCluster)
	cfg.Schedules = 3
	a, _, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	b, _, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if a.Injections != b.Injections || a.Clean != b.Clean || len(a.Violations) != len(b.Violations) {
		t.Fatalf("campaign not deterministic: %+v vs %+v", a, b)
	}
}

func TestGeneratorDeterministicAndBounded(t *testing.T) {
	cfg := small(TargetCluster).withDefaults()
	g1, g2 := newGenerator(cfg), newGenerator(cfg)
	for i := 0; i < 20; i++ {
		s1, s2 := g1.next(), g2.next()
		if s1.String() != s2.String() {
			t.Fatalf("schedule %d diverged:\n%s\nvs\n%s", i, s1, s2)
		}
		if len(s1.Injections) < 1 || len(s1.Injections) > cfg.MaxInjections {
			t.Fatalf("schedule %d has %d injections, want 1..%d", i, len(s1.Injections), cfg.MaxInjections)
		}
		for _, in := range s1.Injections {
			if in.At < 0 || in.At >= cfg.Duration {
				t.Fatalf("injection offset %v outside window %v", in.At, cfg.Duration)
			}
			if in.Machine < 0 || in.Machine >= clusterMachines {
				t.Fatalf("injection machine %d outside fleet of %d", in.Machine, clusterMachines)
			}
		}
	}
}

func TestGeneratorMachineTargetExcludesFleetPoints(t *testing.T) {
	cfg := small(TargetMachine).withDefaults()
	g := newGenerator(cfg)
	for i := 0; i < 40; i++ {
		for _, in := range g.next().Injections {
			if in.Point == fault.MachineCrash || in.Point == fault.MachineDegrade {
				t.Fatalf("machine-target schedule sampled fleet point %s", in.Point)
			}
			if in.Machine != 0 {
				t.Fatalf("machine-target schedule addressed machine %d", in.Machine)
			}
		}
	}
}

// TestMinimizeFindsExactCore drives ddmin with a synthetic predicate:
// the "violation" needs exactly two specific injections, and the
// minimizer must strip the other six.
func TestMinimizeFindsExactCore(t *testing.T) {
	var s fault.Schedule
	for i := 0; i < 8; i++ {
		s.Injections = append(s.Injections, fault.Injection{
			Point: fault.BlockIO,
			At:    sim.Duration(i+1) * sim.Millisecond,
			Burst: 1,
		})
	}
	needs := func(cand fault.Schedule) bool {
		has3, has7 := false, false
		for _, in := range cand.Injections {
			if in.At == 3*sim.Millisecond {
				has3 = true
			}
			if in.At == 7*sim.Millisecond {
				has7 = true
			}
		}
		return has3 && has7
	}
	minimal, probes := minimize(s, needs)
	if len(minimal.Injections) != 2 {
		t.Fatalf("minimized to %d injections, want 2: %s", len(minimal.Injections), minimal)
	}
	if !needs(minimal) {
		t.Fatalf("minimal schedule lost the core: %s", minimal)
	}
	if probes == 0 {
		t.Fatalf("minimizer reported zero probes")
	}
}

func TestMinimizeToEmpty(t *testing.T) {
	var s fault.Schedule
	for i := 0; i < 4; i++ {
		s.Injections = append(s.Injections, fault.Injection{
			Point: fault.RxDrop,
			At:    sim.Duration(i+1) * sim.Millisecond,
			Burst: 1,
		})
	}
	always := func(fault.Schedule) bool { return true }
	minimal, _ := minimize(s, always)
	if len(minimal.Injections) != 0 {
		t.Fatalf("latent violation should minimize to the empty schedule, got %s", minimal)
	}
}

func TestParseArtifactRejectsGarbage(t *testing.T) {
	if _, err := ParseArtifact([]byte(`{"experiment":"bench"}`)); err == nil {
		t.Fatalf("accepted wrong experiment")
	}
	if _, err := ParseArtifact([]byte(`{"experiment":"chaos","schema_version":99,"target":"cluster"}`)); err == nil {
		t.Fatalf("accepted future schema version")
	}
	if _, err := ParseArtifact([]byte(`{"experiment":"chaos","schema_version":1,"target":"warehouse"}`)); err == nil {
		t.Fatalf("accepted unknown target")
	}
	bad := `{"experiment":"chaos","schema_version":1,"target":"cluster",
		"schedule":{"injections":[{"point":"no.such.point","at_ns":1}]}}`
	if _, err := ParseArtifact([]byte(bad)); err == nil {
		t.Fatalf("accepted unknown fault point in schedule")
	}
}

func TestConfigValidate(t *testing.T) {
	if _, _, err := RunCampaign(Config{Target: "fleet"}); err == nil {
		t.Fatalf("accepted unknown target")
	}
}
