package cluster

// router picks a backend for a request among the eligible machines
// (healthy, breaker-admitted, not excluded). All routers are
// deterministic: same state, same pick.
type router interface {
	name() string
	// pick chooses among elig (never empty, ascending machine id).
	// hedge marks hedged dispatches, which should avoid sharpening
	// affinity toward the duplicate's backend.
	pick(b *balancer, req *request, elig []*machine, hedge bool) *machine
}

// RouteNames lists the routing policies the balancer supports, in the
// order the cluster experiment sweeps them.
func RouteNames() []string { return []string{"round-robin", "least-loaded", "kloc"} }

// roundRobin cycles through machines regardless of load or context —
// the baseline every serving stack starts from.
type roundRobin struct{ next int }

func (r *roundRobin) name() string { return "round-robin" }

func (r *roundRobin) pick(b *balancer, req *request, elig []*machine, hedge bool) *machine {
	m := elig[r.next%len(elig)]
	r.next++
	return m
}

// leastLoaded picks the eligible machine with the fewest outstanding
// requests (balancer's view), lowest id breaking ties.
type leastLoaded struct{}

func (leastLoaded) name() string { return "least-loaded" }

func (leastLoaded) pick(b *balancer, req *request, elig []*machine, hedge bool) *machine {
	return minLoad(b, elig)
}

func minLoad(b *balancer, elig []*machine) *machine {
	best := elig[0]
	for _, m := range elig[1:] {
		if b.out[m.id] < b.out[best.id] {
			best = m
		}
	}
	return best
}

// klocAware routes by KLOC context affinity: requests for a context
// group keep landing on the machine that last served the group, whose
// kernel-object working set for it is hot in the fast tier — unless
// that machine is overloaded relative to the fleet, in which case the
// group is re-homed to the least-loaded machine. The paper's
// observation at cluster scale: placement of a request is placement of
// its kernel objects, so the balancer, not just the kernel, should be
// context-aware.
type klocAware struct{}

func (klocAware) name() string { return "kloc" }

func (klocAware) pick(b *balancer, req *request, elig []*machine, hedge bool) *machine {
	if id, ok := b.affinity[req.group]; ok {
		for _, m := range elig {
			if m.id != id {
				continue
			}
			// Honor affinity only while the home machine's load is within
			// reach of the fleet minimum; a hot context is not worth
			// queueing behind a convoy.
			if b.out[id] <= 2*b.out[minLoad(b, elig).id]+4 {
				return m
			}
		}
	}
	m := minLoad(b, elig)
	if !hedge {
		b.affinity[req.group] = m.id
	}
	return m
}

func routerByName(name string) (router, bool) {
	switch name {
	case "round-robin":
		return &roundRobin{}, true
	case "least-loaded":
		return leastLoaded{}, true
	case "kloc":
		return klocAware{}, true
	}
	return nil, false
}
