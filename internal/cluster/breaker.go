package cluster

import "kloc/internal/sim"

// BreakerState is one circuit-breaker state.
type BreakerState uint8

// The circuit breaker's three states.
const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the backend is presumed down; requests are refused
	// without being sent until the cooloff expires.
	BreakerOpen
	// BreakerHalfOpen: the cooloff expired; a bounded number of probe
	// requests test the backend. One success closes the breaker, one
	// failure reopens it.
	BreakerHalfOpen
)

// String names the state for traces and reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// BreakerConfig parameterizes a per-backend circuit breaker.
type BreakerConfig struct {
	// FailThreshold is the consecutive-failure count that opens the
	// breaker (default 5).
	FailThreshold int
	// Cooloff is how long the breaker stays open before admitting
	// half-open probes (default 1 ms).
	Cooloff sim.Duration
	// HalfOpenProbes bounds concurrent trial requests while half-open
	// (default 1).
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 5
	}
	if c.Cooloff <= 0 {
		c.Cooloff = sim.Millisecond
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// Breaker is a per-backend circuit breaker: closed → open after
// FailThreshold consecutive failures, open → half-open after Cooloff,
// half-open → closed on a probe success or back to open on a probe
// failure. Time is passed in explicitly (virtual time), so the type is
// directly unit-testable without an engine.
type Breaker struct {
	cfg    BreakerConfig
	state  BreakerState
	fails  int
	until  sim.Time // while open: when half-open probes are admitted
	probes int      // while half-open: outstanding trial requests
	// gen counts state transitions; probe tokens from a previous
	// generation are stale and must not release a current probe slot.
	gen uint64

	// Opens counts closed/half-open → open transitions; Closes counts
	// half-open → closed transitions.
	Opens, Closes uint64
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	// gen starts at 1 so a zero probe token always means "no slot held".
	return &Breaker{cfg: cfg.withDefaults(), gen: 1}
}

// State reports the current state, transitioning open → half-open if
// the cooloff has expired by now.
func (b *Breaker) State(now sim.Time) BreakerState {
	if b.state == BreakerOpen && now >= b.until {
		b.state = BreakerHalfOpen
		b.probes = 0
		b.gen++
	}
	return b.state
}

// Allow reports whether a request may be routed to this backend at
// virtual time now. It does not consume half-open probe budget — call
// OnDispatch when a request is actually sent.
func (b *Breaker) Allow(now sim.Time) bool {
	switch b.State(now) {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return b.probes < b.cfg.HalfOpenProbes
	default:
		return false
	}
}

// Probes reports the outstanding half-open probe count (oracle hook:
// with no attempts in flight it must be zero, or a probe token leaked).
func (b *Breaker) Probes() int { return b.probes }

// ProbeBudget reports the configured half-open probe bound.
func (b *Breaker) ProbeBudget() int { return b.cfg.HalfOpenProbes }

// OnDispatch records that a request was sent to the backend,
// consuming one half-open probe slot if applicable. The returned
// token is non-zero when a slot was consumed; an attempt abandoned
// without an outcome (a cancelled hedge leg) must pass it to
// OnCancel, or the slot would stay consumed forever and pin the
// breaker half-open with Allow refusing every future dispatch.
func (b *Breaker) OnDispatch(now sim.Time) uint64 {
	if b.State(now) == BreakerHalfOpen {
		b.probes++
		return b.gen
	}
	return 0
}

// OnCancel releases the half-open probe slot identified by a token
// from OnDispatch: the attempt was abandoned with no outcome to
// report, so its slot goes back to the probe budget. Zero and stale
// tokens (the breaker transitioned since the dispatch, resetting the
// probe count) are ignored.
func (b *Breaker) OnCancel(now sim.Time, token uint64) {
	if token != 0 && b.State(now) == BreakerHalfOpen && token == b.gen && b.probes > 0 {
		b.probes--
	}
}

// OnSuccess records a request outcome: a half-open probe success
// closes the breaker; any success resets the failure streak.
func (b *Breaker) OnSuccess(now sim.Time) {
	switch b.State(now) {
	case BreakerHalfOpen:
		b.state = BreakerClosed
		b.fails = 0
		b.probes = 0
		b.gen++
		b.Closes++
	default:
		b.fails = 0
	}
}

// OnFailure records a failed request: a half-open probe failure
// reopens immediately; the FailThreshold-th consecutive failure while
// closed opens the breaker.
func (b *Breaker) OnFailure(now sim.Time) {
	switch b.State(now) {
	case BreakerHalfOpen:
		b.open(now)
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailThreshold {
			b.open(now)
		}
	}
}

func (b *Breaker) open(now sim.Time) {
	b.state = BreakerOpen
	b.until = now.Add(b.cfg.Cooloff)
	b.fails = 0
	b.probes = 0
	b.gen++
	b.Opens++
}
