package cluster

import "kloc/internal/sim"

// BreakerState is one circuit-breaker state.
type BreakerState uint8

// The circuit breaker's three states.
const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the backend is presumed down; requests are refused
	// without being sent until the cooloff expires.
	BreakerOpen
	// BreakerHalfOpen: the cooloff expired; a bounded number of probe
	// requests test the backend. One success closes the breaker, one
	// failure reopens it.
	BreakerHalfOpen
)

// String names the state for traces and reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// BreakerConfig parameterizes a per-backend circuit breaker.
type BreakerConfig struct {
	// FailThreshold is the consecutive-failure count that opens the
	// breaker (default 5).
	FailThreshold int
	// Cooloff is how long the breaker stays open before admitting
	// half-open probes (default 1 ms).
	Cooloff sim.Duration
	// HalfOpenProbes bounds concurrent trial requests while half-open
	// (default 1).
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 5
	}
	if c.Cooloff <= 0 {
		c.Cooloff = sim.Millisecond
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// Breaker is a per-backend circuit breaker: closed → open after
// FailThreshold consecutive failures, open → half-open after Cooloff,
// half-open → closed on a probe success or back to open on a probe
// failure. Time is passed in explicitly (virtual time), so the type is
// directly unit-testable without an engine.
type Breaker struct {
	cfg    BreakerConfig
	state  BreakerState
	fails  int
	until  sim.Time // while open: when half-open probes are admitted
	probes int      // while half-open: outstanding trial requests

	// Opens counts closed/half-open → open transitions; Closes counts
	// half-open → closed transitions.
	Opens, Closes uint64
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State reports the current state, transitioning open → half-open if
// the cooloff has expired by now.
func (b *Breaker) State(now sim.Time) BreakerState {
	if b.state == BreakerOpen && now >= b.until {
		b.state = BreakerHalfOpen
		b.probes = 0
	}
	return b.state
}

// Allow reports whether a request may be routed to this backend at
// virtual time now. It does not consume half-open probe budget — call
// OnDispatch when a request is actually sent.
func (b *Breaker) Allow(now sim.Time) bool {
	switch b.State(now) {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return b.probes < b.cfg.HalfOpenProbes
	default:
		return false
	}
}

// OnDispatch records that a request was sent to the backend,
// consuming one half-open probe slot if applicable.
func (b *Breaker) OnDispatch(now sim.Time) {
	if b.State(now) == BreakerHalfOpen {
		b.probes++
	}
}

// OnSuccess records a request outcome: a half-open probe success
// closes the breaker; any success resets the failure streak.
func (b *Breaker) OnSuccess(now sim.Time) {
	switch b.State(now) {
	case BreakerHalfOpen:
		b.state = BreakerClosed
		b.fails = 0
		b.probes = 0
		b.Closes++
	default:
		b.fails = 0
	}
}

// OnFailure records a failed request: a half-open probe failure
// reopens immediately; the FailThreshold-th consecutive failure while
// closed opens the breaker.
func (b *Breaker) OnFailure(now sim.Time) {
	switch b.State(now) {
	case BreakerHalfOpen:
		b.open(now)
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailThreshold {
			b.open(now)
		}
	}
}

func (b *Breaker) open(now sim.Time) {
	b.state = BreakerOpen
	b.until = now.Add(b.cfg.Cooloff)
	b.fails = 0
	b.probes = 0
	b.Opens++
}
