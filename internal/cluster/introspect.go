package cluster

import "kloc/internal/sim"

// Introspection is a point-in-time snapshot of the serving plane's
// internal accounting, exposed for the chaos engine's invariant
// oracles (internal/chaos). Slices are indexed by machine id.
type Introspection struct {
	// Now is the virtual time of the snapshot.
	Now sim.Time

	// Outstanding is the balancer's admitted-but-unresolved gauge;
	// AdmittedAll/ResolvedAll its full-run admission and termination
	// counters (conservation: after drain, Outstanding == 0 and
	// AdmittedAll == ResolvedAll).
	Outstanding int
	AdmittedAll uint64
	ResolvedAll uint64

	// Out is the balancer's outstanding-attempt gauge per machine;
	// Busy/Queued/Serving the machines' own views. All must be zero
	// after drain.
	Out     []int
	Busy    []int
	Queued  []int
	Serving []int

	// Up/Healthy/Degraded are the per-machine liveness flags (liveness:
	// once faults stop firing, every machine settles back to up,
	// healthy, and undegraded).
	Up       []bool
	Healthy  []bool
	Degraded []bool

	// BreakerState/BreakerProbes/BreakerBudget snapshot each machine's
	// circuit breaker (conservation: with nothing in flight, no breaker
	// holds a probe slot).
	BreakerState  []BreakerState
	BreakerProbes []int
	BreakerBudget []int
}

// Introspect snapshots the serving plane. Call after Run (and
// optionally Settle); it reads balancer and machine state directly,
// so calling it mid-run from outside the event loop is a bug.
func (c *Cluster) Introspect() Introspection {
	n := len(c.machines)
	in := Introspection{
		Now:           c.eng.Now(),
		Outstanding:   c.lb.outstanding,
		AdmittedAll:   c.lb.admittedAll,
		ResolvedAll:   c.lb.resolvedAll,
		Out:           make([]int, n),
		Busy:          make([]int, n),
		Queued:        make([]int, n),
		Serving:       make([]int, n),
		Up:            make([]bool, n),
		Healthy:       make([]bool, n),
		Degraded:      make([]bool, n),
		BreakerState:  make([]BreakerState, n),
		BreakerProbes: make([]int, n),
		BreakerBudget: make([]int, n),
	}
	copy(in.Out, c.lb.out)
	for i, m := range c.machines {
		in.Busy[i] = m.busy
		in.Queued[i] = len(m.queue)
		in.Serving[i] = len(m.serving)
		in.Up[i] = m.up
		in.Healthy[i] = m.healthy
		in.Degraded[i] = m.degraded
		br := c.lb.breakers[i]
		in.BreakerState[i] = br.State(in.Now)
		in.BreakerProbes[i] = br.Probes()
		in.BreakerBudget[i] = br.ProbeBudget()
	}
	return in
}

// Settle resumes a drained run for up to bound additional virtual
// time, stepping at the health-probe interval, until the fleet is
// quiescent: every machine up, healthy, undegraded, and idle, with no
// outstanding requests. It reports whether quiescence was reached —
// the liveness oracle's primitive (a crashed machine must restart and
// be re-admitted; a pinned breaker or leaked slot shows up as a fleet
// that never settles). The run's report is unaffected: Run copied its
// stats before returning.
func (c *Cluster) Settle(bound sim.Duration) bool {
	deadline := c.eng.Now().Add(bound)
	step := c.health.cfg.Interval
	for {
		if c.quiescent() {
			return true
		}
		if c.eng.Now() >= deadline || c.runErr != nil {
			return false
		}
		next := c.eng.Now().Add(step)
		if next > deadline {
			next = deadline
		}
		c.eng.RunUntil(next)
	}
}

// quiescent reports whether the serving plane is fully settled.
func (c *Cluster) quiescent() bool {
	if c.lb.outstanding != 0 {
		return false
	}
	for _, m := range c.machines {
		if !m.up || !m.healthy || m.degraded || m.busy != 0 || len(m.queue) != 0 || len(m.serving) != 0 {
			return false
		}
	}
	return true
}
