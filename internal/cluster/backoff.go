package cluster

import "kloc/internal/sim"

// BackoffConfig parameterizes the client retry schedule: capped
// exponential growth with seeded jitter. Jitter is the load-bearing
// half — after a machine crash every in-flight request fails at the
// same instant, and without jitter their retries arrive as a synchronized
// convoy that re-overloads the next backend (the classic retry storm).
type BackoffConfig struct {
	// Base is the nominal first-retry delay (default 100 µs).
	Base sim.Duration
	// Cap bounds the grown delay (default 1 ms).
	Cap sim.Duration
	// Mult is the per-attempt growth factor (default 2).
	Mult float64
}

func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.Base <= 0 {
		c.Base = 100 * sim.Microsecond
	}
	if c.Cap <= 0 {
		c.Cap = sim.Millisecond
	}
	if c.Mult < 1 {
		c.Mult = 2
	}
	return c
}

// Backoff computes retry delays. The zero value uses the defaults.
type Backoff struct {
	cfg BackoffConfig
}

// NewBackoff builds a backoff schedule from a config.
func NewBackoff(cfg BackoffConfig) Backoff {
	return Backoff{cfg: cfg.withDefaults()}
}

// Delay returns the wait before retry number attempt (1-based: the
// delay after the first failed attempt is Delay(1)). The grown delay
// d is equal-jittered: the result is uniform in [d/2, d], drawn from
// the caller's seeded stream — same seed, same schedule.
func (b Backoff) Delay(attempt int, r *sim.RNG) sim.Duration {
	cfg := b.cfg.withDefaults()
	d := float64(cfg.Base)
	for i := 1; i < attempt; i++ {
		d *= cfg.Mult
		if d >= float64(cfg.Cap) {
			break
		}
	}
	if d > float64(cfg.Cap) {
		d = float64(cfg.Cap)
	}
	half := sim.Duration(d) / 2
	if half < 1 {
		half = 1
	}
	return half + sim.Duration(r.Int63n(int64(half)+1))
}
