package cluster

import (
	"kloc/internal/fault"
	"kloc/internal/kernel"
	"kloc/internal/memsim"
	"kloc/internal/policy"
	"kloc/internal/sim"
	"kloc/internal/trace"
	"kloc/internal/workload"
)

// machine is one simulated backend: a complete kernel + memory +
// fs/net stack running one workload instance, sharing the cluster's
// single virtual clock. Requests queue at the machine and are served
// by a bounded worker pool; each served request runs one workload step
// on the machine's kernel and pays the step's virtual cost, scaled up
// when the request's KLOC context group is cold on this machine or
// when the machine's fast tier is degraded.
type machine struct {
	id int
	c  *Cluster
	k  *kernel.Kernel
	wl workload.Workload
	// rng is this machine's private stream (forked per machine by the
	// cluster); only the lane driving the machine draws from it.
	//klocs:owner=lane
	rng *sim.RNG

	// plane drives this machine's crash/degrade schedule (nil-safe).
	plane *fault.Plane

	up       bool
	healthy  bool // health checker's view; balancer routes only to healthy
	degraded bool
	// epoch invalidates in-flight completions across a crash: a service
	// completion whose epoch no longer matches arrived from before the
	// crash and must not touch the restarted machine's accounting.
	epoch uint64

	workers int
	busy    int
	queue   []*attempt
	serving []*attempt

	// hot is the machine's recently-served KLOC context groups: an LRU
	// of at most hotCap entries. A request whose group misses pays the
	// cold-context penalty (its kernel objects — sockets, dentries,
	// journal state — are not resident in the fast tier).
	hot    []uint64
	hotCap int
}

// newMachine builds one backend stack. The caller owns scheduling;
// nothing runs until the cluster starts the kernel daemons.
func newMachine(cfg Config, eng *sim.Engine, id int, rng *sim.RNG) (*machine, error) {
	mem := memsim.NewTwoTier(memsim.DefaultTwoTier(cfg.ScaleDiv))
	pol, err := policy.ByName(cfg.Policy)
	if err != nil {
		return nil, wrapErr("policy", err)
	}
	wcfg := cfg.WLConfig
	wcfg.ScaleDiv = cfg.ScaleDiv
	if wcfg.Threads <= 0 {
		// One workload thread per worker slot: served requests map onto
		// per-thread workload state (e.g. redis client sockets).
		wcfg.Threads = cfg.Workers
	}
	wl, err := workload.ByName(cfg.Workload, wcfg)
	if err != nil {
		return nil, wrapErr("workload", err)
	}
	k := kernel.New(eng, mem, pol)
	// Fork the workload's stream before the machine takes ownership of
	// rng: after the handoff the machine must be the only reader.
	wlRNG := rng.Fork()
	m := &machine{
		id:      id,
		k:       k,
		wl:      wl,
		rng:     rng,
		up:      true,
		healthy: true,
		workers: cfg.Workers,
		hotCap:  cfg.HotCap,
	}
	if err := wl.Setup(k, wlRNG); err != nil {
		return nil, wrapErr("setup", err)
	}
	return m, nil
}

// hotTouch reports whether the group was hot and makes it the
// most-recently-served entry, evicting the LRU beyond capacity.
func (m *machine) hotTouch(group uint64) bool {
	for i, g := range m.hot {
		if g == group {
			copy(m.hot[1:i+1], m.hot[:i])
			m.hot[0] = group
			return true
		}
	}
	m.hot = append(m.hot, 0)
	copy(m.hot[1:], m.hot)
	m.hot[0] = group
	if len(m.hot) > m.hotCap {
		m.hot = m.hot[:m.hotCap]
	}
	return false
}

// hotHas reports whether the group is hot without touching the LRU
// (the balancer's routing view).
func (m *machine) hotHas(group uint64) bool {
	for _, g := range m.hot {
		if g == group {
			return true
		}
	}
	return false
}

// consultPlane checks this machine's crash/degrade fault points at
// virtual time now. Called at dispatch and at health probes, so a
// scheduled fault fires within one probe period even when idle.
func (m *machine) consultPlane(e *sim.Engine) {
	if m.plane == nil {
		return
	}
	now := e.Now()
	if m.up && m.plane.Check(fault.MachineCrash, now) != 0 {
		m.crash(e)
	}
	if m.up && !m.degraded && m.plane.Check(fault.MachineDegrade, now) != 0 {
		m.degrade(e)
	}
}

// crash takes the machine down: queued and in-flight requests fail
// with EIO, caches go cold, and a cold restart is scheduled after the
// configured downtime.
func (m *machine) crash(e *sim.Engine) {
	if !m.up {
		return
	}
	now := e.Now()
	dropped := len(m.queue)
	m.up = false
	m.epoch++
	m.degraded = false
	m.hot = m.hot[:0]
	if m.c.measuring {
		m.c.stats.Crashes++
	}
	m.c.tr.Emit(trace.MachineCrash, now, 0, uint64(m.id), "crash", m.id, int64(dropped+m.busy))
	queued := m.queue
	inService := m.serving
	m.queue = nil
	m.serving = nil
	m.busy = 0
	for _, at := range queued {
		m.c.lb.attemptFailed(e, at, fault.EIO)
	}
	// In-flight work dies with the machine: the client sees the
	// connection drop now rather than waiting out its timeout.
	for _, at := range inService {
		m.c.lb.attemptFailed(e, at, fault.EIO)
	}
	e.After(m.c.cfg.RestartDelay, func(e *sim.Engine) { m.restart(e) })
}

// restart brings the machine back up with cold caches (the hot set was
// cleared at crash; the kernel's page cache survives in simulation but
// the KLOC hot-context view — what the cold penalty models — does not).
func (m *machine) restart(e *sim.Engine) {
	m.up = true
	if m.c.measuring {
		m.c.stats.Restarts++
	}
	m.c.tr.Emit(trace.MachineCrash, e.Now(), 0, uint64(m.id), "restart", m.id, 0)
}

// degrade slows the machine's fast tier for the configured window: it
// stays up but serves at slow-tier speed.
func (m *machine) degrade(e *sim.Engine) {
	m.degraded = true
	m.c.tr.Emit(trace.MachineHealth, e.Now(), 0, uint64(m.id), "degrade", m.id, 0)
	e.After(m.c.cfg.DegradeFor, func(e *sim.Engine) {
		if m.degraded {
			m.degraded = false
			m.c.tr.Emit(trace.MachineHealth, e.Now(), 0, uint64(m.id), "recover", m.id, 0)
		}
	})
}

// enqueue accepts a dispatched attempt, or fails it fast: a down
// machine refuses connections, a full queue rejects.
func (m *machine) enqueue(e *sim.Engine, at *attempt) {
	if !m.up {
		if at.req.measured {
			m.c.stats.ConnRefused++
		}
		m.c.lb.attemptFailed(e, at, fault.EIO)
		return
	}
	if len(m.queue) >= m.c.cfg.QueueLimit {
		if at.req.measured {
			m.c.stats.QueueRejects++
		}
		m.c.lb.attemptFailed(e, at, fault.EAGAIN)
		return
	}
	m.queue = append(m.queue, at)
	m.maybeServe(e)
}

// maybeServe starts service on queued attempts while worker slots are
// free, skipping attempts already settled (timed out, hedge-lost).
func (m *machine) maybeServe(e *sim.Engine) {
	for m.up && m.busy < m.workers && len(m.queue) > 0 {
		at := m.queue[0]
		m.queue = m.queue[1:]
		if at.settled || at.req.done {
			continue
		}
		m.startService(e, at)
	}
}

// startService runs one workload step for the attempt and schedules
// its completion after the step's virtual cost, scaled by the
// cold-context penalty and any fast-tier degradation.
func (m *machine) startService(e *sim.Engine, at *attempt) {
	slot := m.busy
	m.busy++
	at.started = true
	at.serviceEpoch = m.epoch
	m.serving = append(m.serving, at)
	hot := m.hotTouch(at.req.group)
	cost, errno, err := m.step(e, slot)
	if err != nil {
		m.c.fatal(e, err)
		return
	}
	if !hot {
		cost = sim.Duration(float64(cost) * m.c.cfg.ColdPenalty)
		if at.req.measured {
			m.c.stats.ColdServed++
		}
	} else if at.req.measured {
		m.c.stats.HotServed++
	}
	if m.degraded {
		cost = sim.Duration(float64(cost) * m.c.cfg.DegradeFactor)
	}
	e.After(cost, func(e *sim.Engine) { m.complete(e, at, errno) })
}

// step executes one workload operation on a worker slot and returns
// its virtual cost. Errno-style failures degrade the request (the
// client sees a retryable server error); anything else is a harness
// bug and aborts the run.
func (m *machine) step(e *sim.Engine, slot int) (sim.Duration, fault.Errno, error) {
	thread := slot % m.wl.Threads()
	ctx := m.k.NewCtx(thread)
	err := m.wl.Step(m.k, ctx, thread, m.rng)
	cost := ctx.Cost
	if cost < 100 {
		cost = 100
	}
	if err != nil {
		if errno, ok := fault.AsErrno(err); ok {
			if m.c.measuring {
				m.c.stats.ServerErrors++
			}
			return cost, errno, nil
		}
		return cost, 0, err
	}
	return cost, 0, nil
}

// complete finishes one service: frees the worker slot (unless the
// machine crashed since, which already zeroed it) and resolves the
// attempt with the balancer.
func (m *machine) complete(e *sim.Engine, at *attempt, errno fault.Errno) {
	live := at.serviceEpoch == m.epoch && m.up
	if live {
		m.busy--
		for i, s := range m.serving {
			if s == at {
				m.serving = append(m.serving[:i], m.serving[i+1:]...)
				break
			}
		}
	}
	if at.settled || at.req.done {
		// The client stopped waiting (timeout, hedge winner elsewhere,
		// crash-failed): the server burned this work for nothing.
		if at.req.measured {
			m.c.stats.WastedWork++
		}
	} else if errno != 0 {
		m.c.lb.attemptFailed(e, at, errno)
	} else {
		m.c.lb.attemptSucceeded(e, at)
	}
	if live {
		m.maybeServe(e)
	}
}
