package cluster

import (
	"kloc/internal/fault"
	"kloc/internal/sim"
	"kloc/internal/trace"
)

// request is one open-loop client request from arrival to resolution
// (success, final failure, or shed).
type request struct {
	id      uint64
	group   uint64 // KLOC context group (Zipf-drawn client/tenant id)
	arrived sim.Time
	// rng drives this request's retry jitter, forked from the client
	// stream at admission so retry schedules are per-request streams.
	//klocs:owner=lane
	rng *sim.RNG

	attempts int
	hedged   bool
	done     bool
	inWindow bool // arrived during a configured fault window
	// measured: the request arrived inside the measured window; only
	// these touch the run's counters (warmup stragglers resolving after
	// the window opens would otherwise skew them).
	measured bool

	inflight []*attempt
	hedgeEv  *sim.Event
	retryEv  *sim.Event
}

// attempt is one dispatch of a request to one machine.
type attempt struct {
	req   *request
	m     *machine
	n     int // attempt number (1-based)
	hedge bool

	timeoutEv *sim.Event
	// settled: this attempt's outcome is decided (success, failure,
	// timeout abandonment, hedge loss, crash). The server may still be
	// working on a settled attempt — that shows up as wasted work.
	settled bool
	// started: a worker began serving it (distinguishes wasted service
	// from attempts that died in the queue).
	started bool
	// serviceEpoch snapshots the machine epoch at service start so a
	// completion from before a crash cannot corrupt the restarted
	// machine's slot accounting.
	serviceEpoch uint64
	// probe is the half-open probe token from Breaker.OnDispatch
	// (zero when no probe slot was consumed); a cancellation with no
	// outcome must hand it back via Breaker.OnCancel.
	probe uint64
}

// balancer is the cluster front end: admission control with KLOC-aware
// shedding, routing, per-backend circuit breakers, client timeouts,
// capped-jittered retries, and hedged requests.
type balancer struct {
	c        *Cluster
	router   router
	breakers []*Breaker
	// out is the balancer's view of outstanding attempts per machine.
	out []int
	// outstanding counts admitted, unresolved requests (the shed gauge).
	outstanding int
	// affinity maps context group → home machine for the kloc router
	// and the cold-shed admission check. Written only by klocAware.pick;
	// read by key, never iterated.
	affinity map[uint64]int

	// admittedAll/resolvedAll count admitted requests and their terminal
	// resolutions over the whole run, warmup included. The chaos
	// engine's conservation oracle checks they match after drain: every
	// admitted request terminates exactly once.
	admittedAll uint64
	resolvedAll uint64
}

func newBalancer(c *Cluster, r router) *balancer {
	b := &balancer{
		c:        c,
		router:   r,
		breakers: make([]*Breaker, len(c.machines)),
		out:      make([]int, len(c.machines)),
		affinity: make(map[uint64]int, c.cfg.Groups),
	}
	for i := range b.breakers {
		b.breakers[i] = NewBreaker(c.cfg.Breaker)
	}
	return b
}

// admit applies admission control to a fresh arrival and dispatches it
// or sheds it. KLOC-aware shedding: requests whose context group has a
// home machine (their kernel objects are plausibly hot somewhere) may
// use the full outstanding budget; cold-context requests are shed
// earlier, at HotShedFrac of it — under overload the cluster keeps the
// work it can serve cheaply and refuses the work that would run at
// cold-miss cost.
func (b *balancer) admit(e *sim.Engine, req *request) {
	if req.measured {
		b.c.stats.Arrivals++
		if req.inWindow {
			b.c.stats.FaultArrivals++
		}
	}
	klocRoute := b.router.name() == "kloc"
	limit := b.c.cfg.ShedLimit
	_, hot := b.affinity[req.group]
	if klocRoute && !hot {
		limit = int(float64(limit) * b.c.cfg.HotShedFrac)
	}
	if b.outstanding >= limit {
		class := "hot"
		if !hot {
			class = "cold"
		}
		if req.measured {
			b.c.stats.Shed++
			if klocRoute && !hot {
				b.c.stats.ShedCold++
			}
		}
		// The shed response is EAGAIN: retryable at the client, but this
		// open-loop client does not retry sheds — shedding exists to keep
		// goodput up, and re-offering the load would undo it.
		req.done = true
		b.c.tr.Emit(trace.LBShed, e.Now(), req.group, req.id, class, -1, int64(b.outstanding))
		return
	}
	b.outstanding++
	b.admittedAll++
	if req.measured {
		b.c.stats.Admitted++
	}
	b.dispatch(e, req, nil, false)
}

// eligible lists machines the router may pick: healthy, breaker-
// admitted, not the excluded one. Ascending id (deterministic).
func (b *balancer) eligible(e *sim.Engine, exclude *machine) []*machine {
	elig := make([]*machine, 0, len(b.c.machines))
	for i, m := range b.c.machines {
		if m == exclude || !m.healthy {
			continue
		}
		if !b.breakers[i].Allow(e.Now()) {
			continue
		}
		elig = append(elig, m)
	}
	return elig
}

// dispatch sends one attempt of the request to a routed machine, arms
// its timeout, and (for first attempts) arms the hedge timer.
func (b *balancer) dispatch(e *sim.Engine, req *request, exclude *machine, hedge bool) {
	elig := b.eligible(e, exclude)
	if len(elig) == 0 && exclude != nil {
		// Nothing else to try; the excluded machine is better than none.
		elig = b.eligible(e, nil)
	}
	if len(elig) == 0 {
		// Total outage from the balancer's view: every machine ejected or
		// breaker-open. Back off and retry; the breakers' cooloff may
		// re-admit someone.
		b.retryOrFail(e, req, nil, fault.EAGAIN)
		return
	}
	m := b.router.pick(b, req, elig, hedge)
	req.attempts++
	at := &attempt{req: req, m: m, n: req.attempts, hedge: hedge}
	req.inflight = append(req.inflight, at)
	b.out[m.id]++
	at.probe = b.breakers[m.id].OnDispatch(e.Now())
	class := "cold"
	if m.hotHas(req.group) {
		class = "hot"
	}
	b.c.tr.Emit(trace.LBRoute, e.Now(), req.group, req.id, class, m.id, int64(at.n))
	if !hedge && !req.hedged && b.c.cfg.HedgeAfter > 0 {
		req.hedgeEv = e.After(b.c.cfg.HedgeAfter, func(e *sim.Engine) { b.hedgeFire(e, req) })
	}
	at.timeoutEv = e.After(b.c.cfg.Timeout, func(e *sim.Engine) { b.onTimeout(e, at) })
	m.consultPlane(e)
	m.enqueue(e, at)
}

// hedgeFire launches a hedged duplicate if the request is still
// waiting on exactly its primary attempt.
func (b *balancer) hedgeFire(e *sim.Engine, req *request) {
	req.hedgeEv = nil
	if req.done || req.hedged || len(req.inflight) != 1 {
		return
	}
	req.hedged = true
	if req.measured {
		b.c.stats.Hedges++
	}
	b.c.tr.Emit(trace.LBHedge, e.Now(), req.group, req.id, "hedge", req.inflight[0].m.id, int64(req.attempts))
	b.dispatch(e, req, req.inflight[0].m, true)
}

// onTimeout abandons an attempt whose deadline expired: the client
// stops waiting (the server may still be serving it — wasted work) and
// the request retries elsewhere.
func (b *balancer) onTimeout(e *sim.Engine, at *attempt) {
	if at.settled || at.req.done {
		return
	}
	at.settled = true
	at.timeoutEv = nil
	if at.req.measured {
		b.c.stats.Timeouts++
	}
	b.unlink(e, at)
	if len(at.req.inflight) > 0 {
		return // a hedge is still in flight; let it race the retry path
	}
	b.retryOrFail(e, at.req, at.m, fault.ETIMEDOUT)
}

// attemptFailed resolves one attempt as failed (connection refused,
// queue reject, server errno, crash) and retries the request if it has
// budget left.
func (b *balancer) attemptFailed(e *sim.Engine, at *attempt, errno fault.Errno) {
	if at.settled || at.req.done {
		return
	}
	at.settled = true
	b.unlink(e, at)
	if len(at.req.inflight) > 0 {
		return // the other hedge leg is still running
	}
	b.retryOrFail(e, at.req, at.m, errno)
}

// attemptSucceeded resolves the whole request: the winning attempt
// reports success, every other leg is cancelled (its service, if any,
// becomes wasted work).
func (b *balancer) attemptSucceeded(e *sim.Engine, at *attempt) {
	if at.settled || at.req.done {
		return
	}
	req := at.req
	at.settled = true
	b.cancelEv(&at.timeoutEv)
	b.out[at.m.id]--
	b.breakerResult(e, at.m.id, true)
	for _, other := range req.inflight {
		if other == at || other.settled {
			continue
		}
		other.settled = true
		b.cancelEv(&other.timeoutEv)
		if b.c.cfg.Bug != BugHedgeSlotLeak {
			b.out[other.m.id]--
		}
		// The losing leg reports no outcome, but a half-open probe slot
		// it consumed must be released or its breaker would refuse every
		// future dispatch and the machine would drop out of routing.
		if b.c.cfg.Bug != BugProbeLeak {
			b.breakers[other.m.id].OnCancel(e.Now(), other.probe)
		}
	}
	req.inflight = nil
	b.cancelEv(&req.hedgeEv)
	b.cancelEv(&req.retryEv)
	req.done = true
	b.outstanding--
	b.resolvedAll++
	if !req.measured {
		return
	}
	b.c.stats.Completed++
	if at.hedge {
		b.c.stats.HedgeWins++
	}
	if req.inWindow {
		b.c.stats.FaultCompleted++
	}
	b.c.lat.Observe(float64(e.Now().Sub(req.arrived)))
}

// unlink detaches a settled attempt from its request and machine and
// feeds the failure to the machine's breaker.
func (b *balancer) unlink(e *sim.Engine, at *attempt) {
	b.cancelEv(&at.timeoutEv)
	b.out[at.m.id]--
	b.breakerResult(e, at.m.id, false)
	req := at.req
	for i, other := range req.inflight {
		if other == at {
			req.inflight = append(req.inflight[:i], req.inflight[i+1:]...)
			break
		}
	}
}

// retryOrFail schedules another attempt after backoff, or fails the
// request for good once the attempt budget is spent.
func (b *balancer) retryOrFail(e *sim.Engine, req *request, last *machine, errno fault.Errno) {
	if req.done {
		return
	}
	if len(req.inflight) > 0 {
		// A dispatch that found no eligible machine (a hedge or retry
		// landing while every backend looks down) falls through here with
		// another leg still in flight. Failing or re-arming now would
		// race that leg — when it later succeeded, the request would
		// already be marked failed and its slot accounting skewed for
		// good. Let the in-flight leg resolve and drive the retry.
		return
	}
	if req.attempts >= b.c.cfg.MaxAttempts {
		req.done = true
		b.outstanding--
		b.resolvedAll++
		b.cancelEv(&req.hedgeEv)
		b.cancelEv(&req.retryEv)
		if req.measured {
			b.c.stats.Failed++
			if errno == fault.ETIMEDOUT {
				b.c.stats.FailedTimeout++
			}
		}
		return
	}
	delay := b.c.backoff.Delay(req.attempts, req.rng)
	if req.measured {
		b.c.stats.Retries++
	}
	node := -1
	if last != nil {
		node = last.id
	}
	b.c.tr.Emit(trace.LBRetry, e.Now(), req.group, req.id, errno.String(), node, int64(req.attempts))
	b.cancelEv(&req.retryEv)
	req.retryEv = e.After(delay, func(e *sim.Engine) {
		req.retryEv = nil
		if req.done {
			return
		}
		b.dispatch(e, req, last, false)
	})
}

// breakerResult feeds an outcome to a machine's breaker and emits a
// trace event when the breaker changes state.
func (b *balancer) breakerResult(e *sim.Engine, id int, ok bool) {
	br := b.breakers[id]
	before := br.State(e.Now())
	if ok {
		br.OnSuccess(e.Now())
	} else {
		br.OnFailure(e.Now())
	}
	after := br.State(e.Now())
	if after != before {
		if b.c.measuring {
			switch after {
			case BreakerOpen:
				b.c.stats.BreakerOpens++
			case BreakerClosed:
				b.c.stats.BreakerCloses++
			}
		}
		b.c.tr.Emit(trace.LBBreaker, e.Now(), 0, uint64(id), after.String(), id, 0)
	}
}

func (b *balancer) cancelEv(ev **sim.Event) {
	if *ev != nil {
		b.c.eng.Cancel(*ev)
		*ev = nil
	}
}
