package cluster

import (
	"kloc/internal/sim"
	"kloc/internal/trace"
)

// HealthConfig parameterizes the balancer's active health checker.
type HealthConfig struct {
	// Interval between probes of each machine (default 500 µs).
	Interval sim.Duration
	// FailAfter consecutive probe failures eject the machine from the
	// routable set (default 2).
	FailAfter int
	// ReadmitAfter consecutive probe successes re-admit it (default 2).
	ReadmitAfter int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * sim.Microsecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 2
	}
	return c
}

// healthChecker actively probes every machine on a fixed period and
// maintains the balancer's routable set: FailAfter consecutive failed
// probes eject a machine, ReadmitAfter successes bring it back. Probes
// consult the machine's fault plane, so a scheduled crash on an idle
// machine is discovered within one probe period.
type healthChecker struct {
	c    *Cluster
	cfg  HealthConfig
	fail []int // consecutive failed probes per machine
	ok   []int // consecutive successful probes per machine
}

func newHealthChecker(c *Cluster) *healthChecker {
	return &healthChecker{
		c:    c,
		cfg:  c.cfg.Health.withDefaults(),
		fail: make([]int, len(c.machines)),
		ok:   make([]int, len(c.machines)),
	}
}

// start schedules the probe loops, staggered one microsecond apart so
// probes of different machines never tie in the event queue.
func (h *healthChecker) start(e *sim.Engine, at sim.Time) {
	for i, m := range h.c.machines {
		i, m := i, m
		var probe func(*sim.Engine)
		probe = func(e *sim.Engine) {
			h.probe(e, i, m)
			e.After(h.cfg.Interval, probe)
		}
		e.Schedule(at.Add(sim.Duration(i)), probe)
	}
}

// probe checks one machine: a probe succeeds iff the machine is up.
func (h *healthChecker) probe(e *sim.Engine, i int, m *machine) {
	m.consultPlane(e)
	if m.up {
		h.ok[i]++
		h.fail[i] = 0
		if !m.healthy && h.ok[i] >= h.cfg.ReadmitAfter {
			m.healthy = true
			if h.c.measuring {
				h.c.stats.Readmissions++
			}
			h.c.tr.Emit(trace.MachineHealth, e.Now(), 0, uint64(i), "up", i, int64(h.ok[i]))
		}
		return
	}
	h.fail[i]++
	h.ok[i] = 0
	if m.healthy && h.fail[i] >= h.cfg.FailAfter {
		m.healthy = false
		if h.c.measuring {
			h.c.stats.Ejections++
		}
		h.c.tr.Emit(trace.MachineHealth, e.Now(), 0, uint64(i), "down", i, int64(h.fail[i]))
	}
}
