// Package cluster is the simulator's serving plane: a fleet of
// simulated machines — each a complete kernel + tiered-memory + fs/net
// stack — behind a front-end load balancer, driven by an open-loop
// arrival process on the same single virtual clock as everything else.
// It scales the paper's thesis from one kernel to a fleet: placement
// of a request is placement of its kernel objects, so the balancer can
// be KLOC-aware too — routing requests to the machine whose fast tier
// already holds their context's kernel objects, and shedding
// cold-context work first at overload.
//
// The robustness layer is the point: deterministic machine faults
// (crash with cold restart, fast-tier degradation) driven through the
// fault plane, active health checking with ejection and re-admission,
// client timeouts, capped-and-jittered retries, hedged requests,
// per-backend circuit breakers, and admission control. Same seed,
// same byte-identical trace — fault windows included.
package cluster

import (
	"fmt"

	"kloc/internal/fault"
	"kloc/internal/metrics"
	"kloc/internal/sim"
	"kloc/internal/trace"
	"kloc/internal/workload"
)

// FaultKind selects a machine fault scenario.
type FaultKind string

// The machine fault scenarios.
const (
	// FaultCrash takes the machine down at the scheduled time; it
	// restarts with cold caches after RestartDelay.
	FaultCrash FaultKind = "crash"
	// FaultDegrade slows the machine's fast tier for DegradeFor.
	FaultDegrade FaultKind = "degrade"
)

// The reintroducible bugs (Config.Bug). Each reverts one fix from the
// serving plane's review history, producing an invariant violation the
// chaos oracles must catch.
const (
	// BugHedgeSlotLeak skips the losing hedge leg's per-machine slot
	// decrement when the winning leg resolves: the balancer's out[]
	// gauge for that machine drifts up forever (the outstanding-count
	// skew class).
	BugHedgeSlotLeak = "hedge-slot-leak"
	// BugProbeLeak skips releasing the losing hedge leg's half-open
	// probe token: the breaker stays pinned half-open with its probe
	// budget exhausted and the machine drops out of routing for good.
	BugProbeLeak = "probe-leak"
)

// MachineFault schedules one deterministic fault on one machine.
type MachineFault struct {
	// Machine is the target machine index.
	Machine int
	// Kind is the scenario (FaultCrash or FaultDegrade).
	Kind FaultKind
	// At is the fault time as an offset from the measured start.
	At sim.Duration
}

// Config describes one cluster run.
type Config struct {
	// Machines is the fleet size (default 4).
	Machines int
	// Workers is each machine's service concurrency (default 4).
	Workers int
	// QueueLimit bounds each machine's accept queue (default 64).
	QueueLimit int

	// Policy is the per-machine kernel placement policy (default
	// "klocs"); Workload the per-machine serving workload (default
	// "redis"). WLConfig tunes it; ScaleDiv scales footprints.
	Policy   string
	Workload string
	WLConfig workload.Config
	ScaleDiv int

	// Route selects the balancer policy: "round-robin", "least-loaded",
	// or "kloc" (default "kloc").
	Route string
	// Arrival selects the open-loop arrival shape ("poisson", "bursty",
	// "diurnal"; default "poisson") and Rate its mean requests per
	// virtual second (required).
	Arrival string
	Rate    float64

	// Groups is the number of KLOC context groups (client/tenant
	// identities) requests are drawn from, Zipf-skewed with exponent
	// GroupSkew (defaults 64 and 1.2). HotCap is each machine's hot-set
	// capacity in groups (default 16); a request whose group is cold on
	// its machine pays ColdPenalty× its service cost (default 4).
	Groups      int
	GroupSkew   float64
	HotCap      int
	ColdPenalty float64

	// Timeout is the client's per-attempt deadline (default 2 ms).
	// MaxAttempts bounds dispatches per request, hedges included
	// (default 3). HedgeAfter launches a duplicate of a still-waiting
	// first attempt (default 500 µs; a negative value disables hedging).
	Timeout     sim.Duration
	MaxAttempts int
	HedgeAfter  sim.Duration

	// Backoff, Breaker, Health tune the resilience primitives.
	Backoff BackoffConfig
	Breaker BreakerConfig
	Health  HealthConfig

	// ShedLimit caps admitted-but-unresolved requests (default
	// Machines·(Workers+QueueLimit/2)); at the cap new arrivals are
	// shed with EAGAIN. HotShedFrac (default 0.5) is the fraction of
	// the cap available to cold-context requests under the kloc route:
	// overload sheds the expensive work first.
	ShedLimit   int
	HotShedFrac float64

	// Faults schedules deterministic machine faults. RestartDelay is
	// crash downtime (default 10 ms); DegradeFor the degradation window
	// (default 10 ms); DegradeFactor its service-cost multiplier
	// (default 4).
	Faults        []MachineFault
	RestartDelay  sim.Duration
	DegradeFor    sim.Duration
	DegradeFactor float64

	// Chaos is an exact-time fault schedule over the full fault.Points()
	// catalog, offsets rebased to the measured start. cluster.crash and
	// cluster.degrade injections merge with Faults on the targeted
	// machine; every other point arms that machine's kernel-level fault
	// plane. Nil runs without chaos injections.
	Chaos *fault.Schedule

	// Bug re-introduces a historical accounting defect so the chaos
	// engine's oracles can be tested against a known-bad fleet. Empty
	// runs correct code; see BugHedgeSlotLeak and BugProbeLeak.
	Bug string

	// Seed drives every stream in the run; Duration is the measured
	// window (default 60 ms); Warmup runs traffic before measurement
	// (default 5 ms).
	Seed     uint64
	Duration sim.Duration
	Warmup   sim.Duration

	// Trace arms the observability plane for cluster events (lb.*,
	// machine.*). Nil runs untraced. The per-machine kernels stay
	// untraced either way: a fleet's kernel event volume would drown
	// the serving-plane signal.
	Trace *trace.Config
}

// WithDefaults resolves every unset field to its default, so callers
// (the harness sweep) can report the effective fleet shape.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Machines <= 0 {
		c.Machines = 4
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.Policy == "" {
		c.Policy = "klocs"
	}
	if c.Workload == "" {
		c.Workload = "redis"
	}
	if c.ScaleDiv <= 0 {
		c.ScaleDiv = 64
	}
	if c.Route == "" {
		c.Route = "kloc"
	}
	if c.Arrival == "" {
		c.Arrival = "poisson"
	}
	if c.Groups <= 0 {
		c.Groups = 64
	}
	if c.GroupSkew <= 1 {
		c.GroupSkew = 1.2
	}
	if c.HotCap <= 0 {
		c.HotCap = 16
	}
	if c.ColdPenalty < 1 {
		c.ColdPenalty = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * sim.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.HedgeAfter < 0 {
		c.HedgeAfter = 0
	} else if c.HedgeAfter == 0 {
		c.HedgeAfter = 500 * sim.Microsecond
	}
	if c.ShedLimit <= 0 {
		c.ShedLimit = c.Machines * (c.Workers + c.QueueLimit/2)
	}
	if c.HotShedFrac <= 0 || c.HotShedFrac > 1 {
		c.HotShedFrac = 0.5
	}
	if c.RestartDelay <= 0 {
		c.RestartDelay = 10 * sim.Millisecond
	}
	if c.DegradeFor <= 0 {
		c.DegradeFor = 10 * sim.Millisecond
	}
	if c.DegradeFactor < 1 {
		c.DegradeFactor = 4
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Duration <= 0 {
		c.Duration = 60 * sim.Millisecond
	}
	if c.Warmup <= 0 {
		c.Warmup = 5 * sim.Millisecond
	}
	return c
}

// Stats are one run's serving-plane counters.
type Stats struct {
	Arrivals  uint64
	Admitted  uint64
	Completed uint64
	Failed    uint64
	// FailedTimeout is the slice of Failed whose final errno was
	// ETIMEDOUT.
	FailedTimeout uint64
	Shed          uint64
	// ShedCold is the slice of Shed rejected at the cold-context
	// threshold (kloc route only).
	ShedCold uint64

	Retries   uint64
	Timeouts  uint64
	Hedges    uint64
	HedgeWins uint64
	// WastedWork counts completed services whose client had stopped
	// waiting (timeout, hedge lost, crash).
	WastedWork uint64

	// ServerErrors are workload steps that failed with an errno;
	// ConnRefused and QueueRejects are dispatch-time fast failures.
	ServerErrors uint64
	ConnRefused  uint64
	QueueRejects uint64

	BreakerOpens  uint64
	BreakerCloses uint64
	Ejections     uint64
	Readmissions  uint64
	Crashes       uint64
	Restarts      uint64

	// HotServed/ColdServed count services by whether the request's
	// context group was hot on its machine.
	HotServed  uint64
	ColdServed uint64

	// FaultArrivals/FaultCompleted cover requests arriving inside a
	// configured fault window (availability under faults).
	FaultArrivals  uint64
	FaultCompleted uint64
}

// Report is one cluster run's outcome.
type Report struct {
	Route    string
	Arrival  string
	Workload string
	Policy   string
	Machines int
	// Rate is the offered arrival rate (requests per virtual second).
	Rate float64
	// Duration is the measured window.
	Duration sim.Duration

	Stats Stats

	// Latency quantiles over completed requests (arrival to success).
	MeanLatency sim.Duration
	P50         sim.Duration
	P99         sim.Duration
	MaxLatency  sim.Duration

	// OfferedPerSec is the realized arrival rate; GoodputPerSec the
	// completion rate. Availability is Completed/Arrivals, and
	// FaultAvailability the same restricted to fault-window arrivals
	// (1 when no window was configured).
	OfferedPerSec     float64
	GoodputPerSec     float64
	Availability      float64
	FaultAvailability float64
}

// String renders the report deterministically (replay tests compare
// these bytes across same-seed runs).
func (r *Report) String() string {
	s := &r.Stats
	out := fmt.Sprintf("cluster %s/%s route=%s arrival=%s machines=%d rate=%.0f/s\n",
		r.Workload, r.Policy, r.Route, r.Arrival, r.Machines, r.Rate)
	out += fmt.Sprintf("  arrivals=%d admitted=%d completed=%d failed=%d (timeout=%d) shed=%d (cold=%d)\n",
		s.Arrivals, s.Admitted, s.Completed, s.Failed, s.FailedTimeout, s.Shed, s.ShedCold)
	out += fmt.Sprintf("  retries=%d timeouts=%d hedges=%d hedgewins=%d wasted=%d srverr=%d refused=%d qreject=%d\n",
		s.Retries, s.Timeouts, s.Hedges, s.HedgeWins, s.WastedWork, s.ServerErrors, s.ConnRefused, s.QueueRejects)
	out += fmt.Sprintf("  breaker open=%d close=%d eject=%d readmit=%d crash=%d restart=%d hot=%d cold=%d\n",
		s.BreakerOpens, s.BreakerCloses, s.Ejections, s.Readmissions, s.Crashes, s.Restarts, s.HotServed, s.ColdServed)
	out += fmt.Sprintf("  goodput=%.0f/s offered=%.0f/s avail=%.4f fault-avail=%.4f lat mean=%s p50=%s p99=%s max=%s\n",
		r.GoodputPerSec, r.OfferedPerSec, r.Availability, r.FaultAvailability,
		r.MeanLatency, r.P50, r.P99, r.MaxLatency)
	return out
}

// Cluster is one armed serving-plane run.
type Cluster struct {
	cfg      Config
	eng      *sim.Engine
	machines []*machine
	lb       *balancer
	health   *healthChecker
	arr      workload.Arrival
	tr       *trace.Tracer

	// clientRNG is drawn only by the arrival loop's lane; per-request
	// streams fork from it at admission.
	//klocs:owner=lane
	clientRNG *sim.RNG
	groupZipf *sim.Zipf
	backoff   Backoff
	reqIDs    uint64

	// measuring opens at the measured window's start; only requests
	// arriving after that (and fleet events from then on) touch the
	// counters.
	measuring bool
	stats     Stats
	lat       metrics.Distribution
	runErr    error

	// windows are the configured fault windows [from, to) in absolute
	// virtual time, for availability accounting.
	windows [][2]sim.Time
}

// wrapErr surfaces an internal failure across the package boundary as
// an errno-derived error, preserving the cause's text and its errno
// when it carries one.
func wrapErr(op string, err error) error {
	if errno, ok := fault.AsErrno(err); ok {
		return fmt.Errorf("cluster: %s: %s: %w", op, err.Error(), errno)
	}
	return fmt.Errorf("cluster: %s: %s: %w", op, err.Error(), fault.EINVAL)
}

// New builds the fleet: every machine's kernel and workload are set
// up, the shared virtual clock is warped past the setup I/O backlog,
// and the balancer, health checker, and fault schedules are armed.
// Nothing is measured until Run.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("cluster: arrival rate must be positive: %w", fault.EINVAL)
	}
	arr, err := workload.ArrivalByName(cfg.Arrival, cfg.Rate)
	if err != nil {
		return nil, wrapErr("arrival", err)
	}
	rt, ok := routerByName(cfg.Route)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown route %q (valid: round-robin, least-loaded, kloc): %w",
			cfg.Route, fault.EINVAL)
	}
	for _, f := range cfg.Faults {
		if f.Machine < 0 || f.Machine >= cfg.Machines {
			return nil, fmt.Errorf("cluster: fault targets machine %d of %d: %w",
				f.Machine, cfg.Machines, fault.EINVAL)
		}
		if f.Kind != FaultCrash && f.Kind != FaultDegrade {
			return nil, fmt.Errorf("cluster: unknown fault kind %q: %w", f.Kind, fault.EINVAL)
		}
	}
	if cfg.Chaos != nil {
		for _, in := range cfg.Chaos.Injections {
			if in.Machine < 0 || in.Machine >= cfg.Machines {
				return nil, fmt.Errorf("cluster: chaos injection %s targets machine %d of %d: %w",
					in, in.Machine, cfg.Machines, fault.EINVAL)
			}
		}
	}
	switch cfg.Bug {
	case "", BugHedgeSlotLeak, BugProbeLeak:
	default:
		return nil, fmt.Errorf("cluster: unknown bug fixture %q: %w", cfg.Bug, fault.EINVAL)
	}

	c := &Cluster{cfg: cfg, eng: sim.NewEngine(), arr: arr, backoff: NewBackoff(cfg.Backoff)}
	if cfg.Trace != nil {
		c.tr = trace.New(*cfg.Trace)
	}
	root := sim.NewRNG(cfg.Seed)
	for i := 0; i < cfg.Machines; i++ {
		m, err := newMachine(cfg, c.eng, i, root.Fork())
		if err != nil {
			return nil, err
		}
		m.c = c
		c.machines = append(c.machines, m)
	}
	c.clientRNG = root.Fork()
	c.groupZipf = sim.NewZipf(c.clientRNG.Fork(), cfg.GroupSkew, cfg.Groups)
	c.lb = newBalancer(c, rt)
	c.health = newHealthChecker(c)

	// Warp past every machine's setup storage backlog so the measured
	// window starts with idle devices, as single-kernel runs do.
	horizon := c.eng.Now()
	for _, m := range c.machines {
		if h := sim.Time(m.k.FS.MQ.Dev.BusyUntil()); h > horizon {
			horizon = h
		}
	}
	if horizon > c.eng.Now() {
		c.eng.RunUntil(horizon)
	}
	return c, nil
}

// fatal records a non-errno failure (a harness bug, not a modeled
// fault) and halts the run.
func (c *Cluster) fatal(e *sim.Engine, err error) {
	if c.runErr == nil {
		c.runErr = err
	}
	e.Halt()
}

// Tracer returns the run's tracer (nil when untraced) for export.
func (c *Cluster) Tracer() *trace.Tracer { return c.tr }

// newRequest draws one arrival: a Zipf-distributed context group and
// a private jitter stream.
func (c *Cluster) newRequest(now sim.Time) *request {
	req := &request{
		id:       c.reqIDs,
		group:    uint64(c.groupZipf.Next()),
		arrived:  now,
		rng:      c.clientRNG.Fork(),
		measured: c.measuring,
	}
	c.reqIDs++
	for _, w := range c.windows {
		if now >= w[0] && now < w[1] {
			req.inWindow = true
			break
		}
	}
	return req
}

// Run drives the cluster for warmup plus the measured window and
// returns the report. Counters cover the measured window only.
func (c *Cluster) Run() (*Report, error) {
	cfg := c.cfg
	warmStart := c.eng.Now()
	start := warmStart.Add(cfg.Warmup)
	deadline := start.Add(cfg.Duration)

	// Arm machine fault schedules relative to the measured start, and
	// record the windows for availability accounting.
	for i, m := range c.machines {
		rules := make(map[fault.Point]fault.Rule, 2)
		for _, f := range cfg.Faults {
			if f.Machine != i {
				continue
			}
			at := start.Add(f.At)
			switch f.Kind {
			case FaultCrash:
				r := rules[fault.MachineCrash]
				r.Times = append(r.Times, at)
				rules[fault.MachineCrash] = r
				c.windows = append(c.windows, [2]sim.Time{at, at.Add(cfg.RestartDelay)})
			case FaultDegrade:
				r := rules[fault.MachineDegrade]
				r.Times = append(r.Times, at)
				rules[fault.MachineDegrade] = r
				c.windows = append(c.windows, [2]sim.Time{at, at.Add(cfg.DegradeFor)})
			}
		}
		if cfg.Chaos != nil {
			chaosRules := cfg.Chaos.Rules(i, start)
			var kernelRules map[fault.Point]fault.Rule
			// Iterate the catalog, not the rule map, so arming order (and
			// window order) is deterministic.
			for _, pt := range fault.Points() {
				r, ok := chaosRules[pt]
				if !ok {
					continue
				}
				switch pt {
				case fault.MachineCrash, fault.MachineDegrade:
					mr := rules[pt]
					mr.Timed = append(mr.Timed, r.Timed...)
					rules[pt] = mr
					window := cfg.RestartDelay
					if pt == fault.MachineDegrade {
						window = cfg.DegradeFor
					}
					for _, ti := range r.Timed {
						c.windows = append(c.windows, [2]sim.Time{ti.At, ti.At.Add(window)})
					}
				default:
					if kernelRules == nil {
						kernelRules = make(map[fault.Point]fault.Rule)
					}
					kernelRules[pt] = r
				}
			}
			if kernelRules != nil {
				m.k.InjectFaults(fault.NewPlane(fault.Config{
					Seed:  cfg.Seed ^ (uint64(i)+1)<<32,
					Rules: kernelRules,
				}))
			}
		}
		if len(rules) > 0 {
			m.plane = fault.NewPlane(fault.Config{Seed: cfg.Seed + uint64(i), Rules: rules})
		}
	}

	for _, m := range c.machines {
		m.k.Start()
	}
	c.health.start(c.eng, warmStart)

	var arrive func(*sim.Engine)
	arrive = func(e *sim.Engine) {
		if e.Now() >= deadline {
			return
		}
		c.lb.admit(e, c.newRequest(e.Now()))
		e.After(c.arr.Next(e.Now(), c.clientRNG), arrive)
	}
	c.eng.Schedule(warmStart, arrive)
	// Warmup traffic runs the full path (populating hot sets and
	// routing affinity) without touching the counters; requests
	// arriving from the measured start on are the ones counted, even
	// if they resolve after the deadline during drain.
	c.eng.Schedule(start, func(*sim.Engine) { c.measuring = true })
	// Drain: past the deadline no new arrivals come; in-flight requests
	// resolve (complete, fail, or time out) before the queue empties and
	// the run halts on its own. The kernels' periodic daemons would run
	// forever, so halt explicitly once the serving plane is quiet.
	c.eng.Schedule(deadline, func(e *sim.Engine) { c.drain(e) })
	c.eng.Run()
	if c.runErr != nil {
		return nil, wrapErr("run", c.runErr)
	}
	return c.report(deadline.Sub(start)), nil
}

// drain polls until no requests are outstanding, then halts the
// engine (the policy daemons never stop on their own).
func (c *Cluster) drain(e *sim.Engine) {
	if c.lb.outstanding == 0 {
		e.Halt()
		return
	}
	e.After(100*sim.Microsecond, func(e *sim.Engine) { c.drain(e) })
}

func (c *Cluster) report(dur sim.Duration) *Report {
	r := &Report{
		Route:    c.lb.router.name(),
		Arrival:  c.arr.Name(),
		Workload: c.cfg.Workload,
		Policy:   c.cfg.Policy,
		Machines: c.cfg.Machines,
		Rate:     c.cfg.Rate,
		Duration: dur,
		Stats:    c.stats,
	}
	if c.lat.Count() > 0 {
		r.MeanLatency = sim.Duration(c.lat.Mean())
		r.P50 = sim.Duration(c.lat.Quantile(0.5))
		r.P99 = sim.Duration(c.lat.Quantile(0.99))
		r.MaxLatency = sim.Duration(c.lat.Max())
	}
	secs := dur.Seconds()
	if secs > 0 {
		r.OfferedPerSec = float64(c.stats.Arrivals) / secs
		r.GoodputPerSec = float64(c.stats.Completed) / secs
	}
	if c.stats.Arrivals > 0 {
		r.Availability = float64(c.stats.Completed) / float64(c.stats.Arrivals)
	}
	r.FaultAvailability = 1
	if c.stats.FaultArrivals > 0 {
		r.FaultAvailability = float64(c.stats.FaultCompleted) / float64(c.stats.FaultArrivals)
	}
	return r
}

// EstimateServiceCost builds one machine of the configured fleet and
// serves probe requests back to back, returning the mean per-request
// service cost (cold penalties included at the configured group mix).
// The capacity sweep uses it to place offered rates around the knee.
func EstimateServiceCost(cfg Config) (sim.Duration, error) {
	cfg = cfg.withDefaults()
	eng := sim.NewEngine()
	root := sim.NewRNG(cfg.Seed)
	m, err := newMachine(cfg, eng, 0, root.Fork())
	if err != nil {
		return 0, err
	}
	c := &Cluster{cfg: cfg, eng: eng}
	m.c = c
	if h := sim.Time(m.k.FS.MQ.Dev.BusyUntil()); h > eng.Now() {
		eng.RunUntil(h)
	}
	m.k.Start()
	zipf := sim.NewZipf(root.Fork(), cfg.GroupSkew, cfg.Groups)
	const probes = 512
	var total sim.Duration
	for i := 0; i < probes; i++ {
		hot := m.hotTouch(uint64(zipf.Next()))
		cost, _, err := m.step(eng, i%cfg.Workers)
		if err != nil {
			return 0, wrapErr("probe", err)
		}
		if !hot {
			cost = sim.Duration(float64(cost) * cfg.ColdPenalty)
		}
		total += cost
		eng.RunUntil(eng.Now().Add(cost))
	}
	eng.Halt()
	return total / probes, nil
}
