package cluster

import (
	"strings"
	"sync"
	"testing"

	"kloc/internal/sim"
	"kloc/internal/trace"
)

func TestBreakerTransitions(t *testing.T) {
	br := NewBreaker(BreakerConfig{FailThreshold: 3, Cooloff: sim.Millisecond, HalfOpenProbes: 1})
	now := sim.Time(0)
	if got := br.State(now); got != BreakerClosed {
		t.Fatalf("initial state %v, want closed", got)
	}
	// Failures below the threshold keep it closed; a success resets the
	// streak.
	br.OnFailure(now)
	br.OnFailure(now)
	br.OnSuccess(now)
	br.OnFailure(now)
	br.OnFailure(now)
	if got := br.State(now); got != BreakerClosed {
		t.Fatalf("state after interrupted streak %v, want closed", got)
	}
	// The threshold-th consecutive failure opens it.
	br.OnFailure(now)
	if got := br.State(now); got != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures %v, want open", got)
	}
	if br.Allow(now) {
		t.Fatal("open breaker allowed a request")
	}
	// Cooloff expiry → half-open with a bounded probe budget.
	now = now.Add(sim.Millisecond)
	if got := br.State(now); got != BreakerHalfOpen {
		t.Fatalf("state after cooloff %v, want half-open", got)
	}
	if !br.Allow(now) {
		t.Fatal("half-open breaker refused the first probe")
	}
	br.OnDispatch(now)
	if br.Allow(now) {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	// Probe failure reopens; the next cooloff + probe success closes.
	br.OnFailure(now)
	if got := br.State(now); got != BreakerOpen {
		t.Fatalf("state after probe failure %v, want open", got)
	}
	now = now.Add(sim.Millisecond)
	br.OnDispatch(now)
	br.OnSuccess(now)
	if got := br.State(now); got != BreakerClosed {
		t.Fatalf("state after probe success %v, want closed", got)
	}
	if br.Opens != 2 || br.Closes != 1 {
		t.Fatalf("opens=%d closes=%d, want 2 and 1", br.Opens, br.Closes)
	}
}

// TestBreakerCancelReleasesProbe: a half-open probe abandoned without
// an outcome (a cancelled hedge leg) must hand its slot back, or the
// breaker would stay half-open with an exhausted budget forever and
// the backend would never re-enter routing.
func TestBreakerCancelReleasesProbe(t *testing.T) {
	br := NewBreaker(BreakerConfig{FailThreshold: 1, Cooloff: sim.Millisecond, HalfOpenProbes: 1})
	now := sim.Time(0)
	br.OnFailure(now)
	now = now.Add(sim.Millisecond)
	token := br.OnDispatch(now)
	if token == 0 {
		t.Fatal("half-open dispatch consumed no probe slot")
	}
	if br.Allow(now) {
		t.Fatal("probe budget of 1 allowed a second concurrent probe")
	}
	br.OnCancel(now, token)
	if !br.Allow(now) {
		t.Fatal("cancelled probe never released its slot: breaker pinned half-open")
	}
	// A stale token from before a state transition must not release a
	// slot consumed by the new generation.
	token = br.OnDispatch(now)
	br.OnFailure(now) // probe failure → open (new generation)
	now = now.Add(sim.Millisecond)
	fresh := br.OnDispatch(now) // half-open again: fresh probe in flight
	if fresh == 0 {
		t.Fatal("half-open dispatch consumed no probe slot after reopen")
	}
	br.OnCancel(now, token)
	if br.Allow(now) {
		t.Fatal("stale probe token released the new generation's slot")
	}
	// A closed-state dispatch consumes nothing and returns a zero
	// token; cancelling it is a no-op.
	br.OnSuccess(now)
	if got := br.OnDispatch(now); got != 0 {
		t.Fatalf("closed-state dispatch returned probe token %d, want 0", got)
	}
	br.OnCancel(now, 0)
	if !br.Allow(now) {
		t.Fatal("closed breaker stopped allowing after a zero-token cancel")
	}
}

func TestBackoffDeterminism(t *testing.T) {
	bo := NewBackoff(BackoffConfig{Base: 100 * sim.Microsecond, Cap: sim.Millisecond})
	draw := func(seed uint64) []sim.Duration {
		r := sim.NewRNG(seed)
		out := make([]sim.Duration, 0, 8)
		for a := 1; a <= 8; a++ {
			out = append(out, bo.Delay(a, r))
		}
		return out
	}
	x, y := draw(7), draw(7)
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("delay %d diverged at same seed: %v vs %v", i, x[i], y[i])
		}
	}
	z := draw(8)
	same := true
	for i := range x {
		if x[i] != z[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical backoff schedules")
	}
	// Jitter bounds: attempt n's delay lies in [d/2, d] for the grown,
	// capped d.
	r := sim.NewRNG(9)
	for a := 1; a <= 10; a++ {
		d := sim.Duration(100*sim.Microsecond) << (a - 1)
		if d > sim.Millisecond {
			d = sim.Millisecond
		}
		got := bo.Delay(a, r)
		if got < d/2 || got > d {
			t.Fatalf("attempt %d delay %v outside [%v, %v]", a, got, d/2, d)
		}
	}
}

// estimateOnce caches the calibration run: machine setup is the slow
// part of every cluster test.
var (
	estOnce sync.Once
	estCost sim.Duration
	estErr  error
)

func testConfig() Config {
	return Config{
		Machines: 2,
		Workers:  2,
		ScaleDiv: 256,
		Workload: "redis",
		Rate:     1, // callers override
		Duration: 20 * sim.Millisecond,
		Warmup:   2 * sim.Millisecond,
	}
}

func serviceCost(t *testing.T) sim.Duration {
	t.Helper()
	estOnce.Do(func() {
		estCost, estErr = EstimateServiceCost(testConfig())
	})
	if estErr != nil {
		t.Fatal(estErr)
	}
	return estCost
}

// rateFor returns an offered rate loading the test fleet at the given
// factor of its estimated capacity.
func rateFor(t *testing.T, cfg Config, load float64) float64 {
	cost := serviceCost(t)
	capacity := float64(cfg.Machines*cfg.Workers) / cost.Seconds()
	return load * capacity
}

func TestClusterReplayByteIdentical(t *testing.T) {
	run := func() (string, string) {
		cfg := testConfig()
		cfg.Route = "kloc"
		cfg.Rate = rateFor(t, cfg, 0.7)
		cfg.Faults = []MachineFault{{Machine: 1, Kind: FaultCrash, At: 8 * sim.Millisecond}}
		cfg.RestartDelay = 4 * sim.Millisecond
		cfg.Trace = &trace.Config{}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := c.Tracer().WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		return rep.String(), sb.String()
	}
	rep1, tr1 := run()
	rep2, tr2 := run()
	if rep1 != rep2 {
		t.Fatalf("same-seed reports differ:\n%s\nvs\n%s", rep1, rep2)
	}
	if tr1 != tr2 {
		t.Fatal("same-seed trace exports differ")
	}
	if len(tr1) == 0 {
		t.Fatal("trace export is empty")
	}
}

// TestHedgingCancelsLoser: with one machine degraded far past the
// hedge delay, hedges fire, the healthy machine wins, and the loser's
// eventual completion is counted as wasted work.
func TestHedgingCancelsLoser(t *testing.T) {
	cfg := testConfig()
	cfg.Route = "round-robin"
	cfg.Rate = rateFor(t, cfg, 0.2)
	cfg.HedgeAfter = 20 * sim.Microsecond
	cfg.Timeout = 50 * sim.Millisecond // keep timeouts out of the picture
	cfg.DegradeFactor = 400
	cfg.DegradeFor = 40 * sim.Millisecond // the whole run
	cfg.Faults = []MachineFault{{Machine: 1, Kind: FaultDegrade, At: 0}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Stats
	if s.Hedges == 0 {
		t.Fatalf("no hedges fired: %+v", s)
	}
	if s.HedgeWins == 0 {
		t.Fatalf("no hedge ever won against a 400x-degraded backend: %+v", s)
	}
	if s.WastedWork == 0 {
		t.Fatalf("hedge losers' service was never counted as wasted: %+v", s)
	}
}

func TestShedUnderOverload(t *testing.T) {
	cfg := testConfig()
	cfg.Route = "kloc"
	cfg.Rate = rateFor(t, cfg, 5)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Stats
	if s.Shed == 0 {
		t.Fatalf("5x overload shed nothing: %+v", s)
	}
	if s.ShedCold == 0 {
		t.Fatalf("kloc shedding never hit the cold-context threshold: %+v", s)
	}
	if s.Completed == 0 {
		t.Fatalf("overloaded cluster completed nothing: %+v", s)
	}
}

// TestTimeoutsExhaustAttempts: a single 500x-degraded machine cannot
// answer inside the client deadline, so requests time out, retry into
// the same machine, and finally fail with ETIMEDOUT.
func TestTimeoutsExhaustAttempts(t *testing.T) {
	cfg := testConfig()
	cfg.Machines = 1
	cfg.Route = "round-robin"
	cfg.Rate = rateFor(t, cfg, 0.1)
	cfg.Timeout = 200 * sim.Microsecond
	cfg.HedgeAfter = -1 // disabled: isolate the timeout path
	cfg.DegradeFactor = 500
	cfg.DegradeFor = 40 * sim.Millisecond
	cfg.Faults = []MachineFault{{Machine: 0, Kind: FaultDegrade, At: 0}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Stats
	if s.Timeouts == 0 {
		t.Fatalf("no attempt ever timed out: %+v", s)
	}
	if s.FailedTimeout == 0 {
		t.Fatalf("no request failed with ETIMEDOUT after exhausting attempts: %+v", s)
	}
	if s.WastedWork == 0 {
		t.Fatalf("abandoned services were never counted as wasted: %+v", s)
	}
}

// TestCrashWindowRecovery: a mid-run crash ejects the machine, fails
// over traffic, and the fleet re-admits it after restart.
func TestCrashWindowRecovery(t *testing.T) {
	cfg := testConfig()
	cfg.Route = "least-loaded"
	cfg.Rate = rateFor(t, cfg, 0.5)
	cfg.Faults = []MachineFault{{Machine: 0, Kind: FaultCrash, At: 6 * sim.Millisecond}}
	cfg.RestartDelay = 5 * sim.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Stats
	if s.Crashes != 1 || s.Restarts != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1 and 1", s.Crashes, s.Restarts)
	}
	if s.Ejections == 0 {
		t.Fatalf("health checker never ejected the crashed machine: %+v", s)
	}
	if s.Readmissions == 0 {
		t.Fatalf("health checker never re-admitted the restarted machine: %+v", s)
	}
	if s.FaultArrivals == 0 {
		t.Fatal("no arrivals landed in the fault window")
	}
	if rep.Availability < 0.5 {
		t.Fatalf("availability %.3f through a single-machine crash, want >= 0.5\n%s",
			rep.Availability, rep)
	}
	if rep.FaultAvailability <= 0 {
		t.Fatalf("nothing completed during the fault window: %+v", s)
	}
}

// TestHealthProberFlapping: back-to-back crash windows on the same
// machine must drive eject → re-admit → eject → re-admit without
// corrupting routing weights or outstanding counts (regression guard
// for the hedge-leg accounting fixes).
func TestHealthProberFlapping(t *testing.T) {
	cfg := testConfig()
	cfg.Route = "least-loaded"
	cfg.Rate = rateFor(t, cfg, 0.5)
	cfg.RestartDelay = 3 * sim.Millisecond
	cfg.Faults = []MachineFault{
		{Machine: 0, Kind: FaultCrash, At: 4 * sim.Millisecond},
		{Machine: 0, Kind: FaultCrash, At: 10 * sim.Millisecond},
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Stats
	if s.Crashes != 2 || s.Restarts != 2 {
		t.Fatalf("crashes=%d restarts=%d, want 2 and 2", s.Crashes, s.Restarts)
	}
	if s.Ejections < 2 {
		t.Fatalf("ejections=%d, want >= 2 (one per crash window): %+v", s.Ejections, s)
	}
	if s.Readmissions < 2 {
		t.Fatalf("readmissions=%d, want >= 2 (one per restart): %+v", s.Readmissions, s)
	}
	if !c.Settle(20 * sim.Millisecond) {
		t.Fatalf("fleet never settled after flapping: %+v", c.Introspect())
	}
	in := c.Introspect()
	if in.Outstanding != 0 {
		t.Fatalf("outstanding=%d after settle", in.Outstanding)
	}
	if in.AdmittedAll != in.ResolvedAll {
		t.Fatalf("admitted=%d resolved=%d: some request never terminated or terminated twice",
			in.AdmittedAll, in.ResolvedAll)
	}
	for i := range in.Out {
		if in.Out[i] != 0 {
			t.Fatalf("machine %d routing weight skewed: out=%v", i, in.Out)
		}
		if !in.Up[i] || !in.Healthy[i] {
			t.Fatalf("machine %d not re-admitted: up=%v healthy=%v", i, in.Up, in.Healthy)
		}
		if in.BreakerProbes[i] != 0 {
			t.Fatalf("machine %d breaker holds %d probe slots with nothing in flight",
				i, in.BreakerProbes[i])
		}
	}
}
