package kloc_test

import (
	"testing"

	"kloc"
)

func TestPublicAPISurface(t *testing.T) {
	if got := len(kloc.ObjectTypes()); got != 12 {
		t.Fatalf("Table 1 taxonomy size = %d", got)
	}
	if got := len(kloc.WorkloadNames()); got != 5 {
		t.Fatalf("Table 3 catalog size = %d", got)
	}
	if got := len(kloc.ExperimentNames()); got != 14 {
		t.Fatalf("experiment registry size = %d", got)
	}
	if got := len(kloc.FaultPoints()); got != 8 {
		t.Fatalf("fault point catalog size = %d", got)
	}
	if got := len(kloc.ClusterRouteNames()); got != 3 {
		t.Fatalf("cluster route catalog size = %d", got)
	}
	for _, name := range []string{"naive", "nimble", "klocs", "autonuma+klocs"} {
		if _, err := kloc.PolicyByName(name); err != nil {
			t.Fatalf("policy %s: %v", name, err)
		}
	}
	if _, err := kloc.PolicyByName("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := kloc.WorkloadByName("rocksdb", kloc.WorkloadConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := kloc.Experiment("nope", kloc.QuickOptions()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestPublicRunEndToEnd(t *testing.T) {
	res, err := kloc.Run(kloc.RunConfig{
		PolicyName: "klocs",
		Workload:   "redis",
		ScaleDiv:   256,
		Duration:   10 * kloc.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || res.KlocMetadataBytes <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestManualAssembly(t *testing.T) {
	// The long way around the helpers: build every piece explicitly.
	eng := kloc.NewEngine()
	mem := kloc.NewTwoTier(kloc.DefaultTwoTier(512))
	pol, err := kloc.PolicyByName("klocs")
	if err != nil {
		t.Fatal(err)
	}
	k := kloc.NewKernel(eng, mem, pol)
	wl, err := kloc.WorkloadByName("filebench", kloc.WorkloadConfig{ScaleDiv: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := wl.Setup(k, kloc.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	k.Start()
	ctx := k.NewCtx(0)
	if err := wl.Step(k, ctx, 0, kloc.NewRNG(2)); err != nil {
		t.Fatal(err)
	}
	if ctx.Cost <= 0 {
		t.Fatal("operation was free")
	}
}

func TestStandaloneRegistry(t *testing.T) {
	mem := kloc.NewTwoTier(kloc.DefaultTwoTier(512))
	reg := kloc.NewRegistry(mem, 4)
	kn, cost, err := reg.MapKnode(1, []kloc.NodeID{0, 1}, 0)
	if err != nil || kn == nil || cost <= 0 {
		t.Fatalf("MapKnode: %v %v %v", kn, cost, err)
	}
	if reg.Len() != 1 {
		t.Fatal("registry empty after MapKnode")
	}
}
