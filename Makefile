# Tier-1 verification gate (documented in README.md): every change must
# keep `make verify` green before merging.
GO ?= go

.PHONY: verify vet lint build test race bench eval evalfull chaos perf readiness

verify: vet lint build race

vet:
	$(GO) vet ./...

# lint runs the repo's own invariant-enforcing analyzers (kloclint):
# determinism hygiene, errno discipline, trace-name catalog membership,
# alloc/free pairing, and the parallel-readiness suite (ownership,
# lockcheck, rngflow, phasecheck — DESIGN.md §10, §14, §15). It also
# fails when the checked-in PARALLEL_READINESS.md drifts from the code
# (the report is regenerated twice — a determinism check in itself —
# and compared) and when the shared-state count moves off the
# .ownership-ratchet baseline in either direction.
lint:
	$(GO) run ./cmd/kloclint
	$(GO) run ./cmd/kloclint -ownership-ratchet .ownership-ratchet
	$(GO) run ./cmd/kloclint -ownership-report .readiness.run1.tmp
	$(GO) run ./cmd/kloclint -ownership-report .readiness.run2.tmp
	@cmp .readiness.run1.tmp .readiness.run2.tmp || \
		{ rm -f .readiness.run1.tmp .readiness.run2.tmp; \
		  echo "lint: ownership report not byte-stable across identical runs"; exit 1; }
	@cmp .readiness.run1.tmp PARALLEL_READINESS.md || \
		{ rm -f .readiness.run1.tmp .readiness.run2.tmp; \
		  echo "lint: PARALLEL_READINESS.md is stale — run 'make readiness'"; exit 1; }
	@rm -f .readiness.run1.tmp .readiness.run2.tmp

# readiness regenerates the checked-in parallel-readiness inventory
# (the sharded-engine spec, ROADMAP item 2) from the code.
readiness:
	$(GO) run ./cmd/kloclint -ownership-report PARALLEL_READINESS.md

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# eval regenerates eval_quick.txt from two back-to-back runs and fails
# if they differ: the committed evaluation is only meaningful if the
# simulation is byte-stable at a fixed seed.
eval:
	$(GO) run ./cmd/klocbench -exp all -quick > .eval.run1.tmp
	$(GO) run ./cmd/klocbench -exp all -quick > .eval.run2.tmp
	@cmp .eval.run1.tmp .eval.run2.tmp || \
		{ rm -f .eval.run1.tmp .eval.run2.tmp; \
		  echo "eval: output not byte-stable across identical runs"; exit 1; }
	mv .eval.run1.tmp eval_quick.txt
	rm -f .eval.run2.tmp

# evalfull prints the full-fidelity evaluation to stdout (slow).
evalfull:
	$(GO) run ./cmd/klocbench -exp all

# chaos runs the fixed-seed quick chaos campaign (DESIGN.md §12); an
# invariant violation exits 1 and leaves CHAOS_repro_*.json behind for
# `klocbench -exp chaos -replay <file>`.
chaos:
	$(GO) run ./cmd/klocbench -exp chaos -quick -chaos-out BENCH_chaos.json

# perf runs the quick hot-path accounting sweep (PERFORMANCE.md) with
# wall metrics on stdout and the deterministic report in
# BENCH_perf.json; exits 1 if the full fast path regresses below the
# exact baseline on any micro stage.
perf:
	$(GO) run ./cmd/klocbench -exp perf -quick -perf-out BENCH_perf.json
