# Tier-1 verification gate (documented in README.md): every change must
# keep `make verify` green before merging.
GO ?= go

.PHONY: verify vet build test race bench eval

verify: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

eval:
	$(GO) run ./cmd/klocbench -exp all
