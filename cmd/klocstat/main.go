// Command klocstat regenerates the paper's characterization figures
// (Fig 2a-2d): kernel-object footprints, allocation shares, reference
// splits, and lifetimes, per workload.
//
// Usage:
//
//	klocstat                 # all four characterizations
//	klocstat -exp fig2d      # one of them
//	klocstat -workloads rocksdb,redis
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kloc"
)

func main() {
	var (
		exp       = flag.String("exp", "", "fig2a|fig2b|fig2c|fig2d (default: all four)")
		quick     = flag.Bool("quick", false, "reduced virtual duration")
		seed      = flag.Uint64("seed", 42, "simulation seed")
		workloads = flag.String("workloads", "", "comma-separated workload subset")
	)
	flag.Parse()

	opts := kloc.DefaultOptions()
	if *quick {
		opts = kloc.QuickOptions()
	}
	opts.Seed = *seed
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}

	names := []string{"fig2a", "fig2b", "fig2c", "fig2d"}
	if *exp != "" {
		names = []string{*exp}
	}
	for _, name := range names {
		table, err := kloc.Experiment(name, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "klocstat:", err)
			os.Exit(1)
		}
		fmt.Println(table)
	}
}
