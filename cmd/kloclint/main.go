// Command kloclint is the multichecker for the simulator's
// invariant-enforcing analyzer suite (internal/analysis): the
// checkpatch/sparse analog run by `make lint` and CI. It type-checks
// every lintable package of the module — the root package, cmd/...,
// internal/..., and examples/... — and applies the four analyzers:
//
//	nodeterminism  no wall-clock time, ambient randomness, or escaping
//	               map-iteration order
//	errnocheck     no discarded errno-style error returns
//	tracenames     Tracer.Emit names come from the registered catalog
//	allocpair      alloc entry points have matching teardown paths
//
// Usage:
//
//	kloclint              # lint the whole module
//	kloclint -list        # show the analyzer suite
//	kloclint -only errnocheck,tracenames
//	kloclint internal/fs internal/netsim   # specific package dirs
//
// Exit status: 0 clean, 1 diagnostics (or load failures), 2 flag and
// usage errors — the same convention as klocbench.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"kloc/internal/analysis"
)

func main() {
	var (
		list = flag.Bool("list", false, "list the analyzer suite and exit")
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	)
	flag.Usage = usage
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		usageError(err)
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	targets, err := resolveTargets(loader, flag.Args())
	if err != nil {
		usageError(err)
	}

	exit := 0
	for _, t := range targets {
		pkg, err := loader.Load(t.Dir, t.ImportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kloclint:", err)
			exit = 1
			continue
		}
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kloclint:", err)
			exit = 1
			continue
		}
		for _, d := range diags {
			fmt.Println(rel(loader.ModuleDir, d))
			exit = 1
		}
	}
	os.Exit(exit)
}

// rel shortens a diagnostic's filename to be module-relative.
func rel(root string, d analysis.Diagnostic) string {
	if r, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		d.Pos.Filename = r
	}
	return d.String()
}

// selectAnalyzers resolves -only against the suite.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	var names []string
	for _, a := range all {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (valid: %s)", name, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers (valid: %s)", strings.Join(names, ", "))
	}
	return out, nil
}

// resolveTargets turns the positional arguments (package directories
// relative to the module root or the working directory) into load
// targets; with no arguments the whole module is linted.
func resolveTargets(loader *analysis.Loader, args []string) ([]analysis.Target, error) {
	if len(args) == 0 {
		return analysis.ModuleTargets(loader.ModuleDir, loader.ModulePath)
	}
	var out []analysis.Target
	for _, arg := range args {
		dir := arg
		if !filepath.IsAbs(dir) {
			if _, err := os.Stat(dir); err != nil {
				dir = filepath.Join(loader.ModuleDir, arg)
			}
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(loader.ModuleDir, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("package %s is outside the module", arg)
		}
		ip := loader.ModulePath
		if rel != "." {
			ip = loader.ModulePath + "/" + filepath.ToSlash(rel)
		}
		out = append(out, analysis.Target{Dir: abs, ImportPath: ip})
	}
	return out, nil
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"usage: kloclint [-list] [-only a,b] [package-dir ...]\n\n"+
			"Lints the module's packages with the invariant analyzer suite\n"+
			"(see internal/analysis and DESIGN.md §10). With no package\n"+
			"directories the whole module is linted.\n\nflags:\n")
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kloclint:", err)
	os.Exit(1)
}

func usageError(err error) {
	fmt.Fprintln(os.Stderr, "kloclint:", err)
	fmt.Fprintln(os.Stderr, "run 'kloclint -h' for usage")
	os.Exit(2)
}
