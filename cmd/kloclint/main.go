// Command kloclint is the multichecker for the simulator's
// invariant-enforcing analyzer suite (internal/analysis): the
// checkpatch/sparse analog run by `make lint` and CI. It type-checks
// every lintable package of the module — the root package, cmd/...,
// internal/..., and examples/... — and applies the per-package
// analyzers:
//
//	nodeterminism  no wall-clock time, ambient randomness, or escaping
//	               map-iteration order
//	errnocheck     no discarded errno-style error returns
//	tracenames     Tracer.Emit names come from the registered catalog
//	allocpair      alloc entry points have matching teardown paths
//
// plus, over the whole module at once (call graph, CFGs, dataflow),
// the interprocedural analyzers:
//
//	lifecycle      alloc/free pairing proven across call boundaries:
//	               no double free, no path-dependent free, no leak on
//	               early return
//	errnoflow      errors escaping errno-speaking boundaries derive
//	               from the internal/fault vocabulary
//	tracereach     every trace catalog constant has a reachable Emit
//	               site
//	ownership      engine-reachable state classifies into the
//	               lane/epoch/init/shared ownership taxonomy
//	lockcheck      lock ordering is acyclic, unlocks cover every path,
//	               atomic and plain access never mix
//	rngflow        sim.RNG streams are forked explicitly and confined
//	               to one owner
//	phasecheck     lane/barrier/init execution phases propagate over
//	               the call graph and respect the ownership classes:
//	               no epoch writes from lanes, no lane-reachable
//	               barriers, no cross-lane pointer publication
//
// A full-suite, whole-module run also audits the //klocs:* marker
// comments: a marker no analyzer needed (stale) or whose name is not
// in the vocabulary (typo) is itself reported, as suppressaudit.
//
// Usage:
//
//	kloclint              # lint the whole module
//	kloclint -list        # show the analyzer suite
//	kloclint -only errnocheck,lifecycle
//	kloclint -json        # diagnostics as a JSON array on stdout
//	kloclint -sarif out.sarif   # also write SARIF 2.1.0 for CI upload
//	kloclint -ownership-report PARALLEL_READINESS.md   # readiness spec
//	kloclint -ownership-ratchet .ownership-ratchet     # shared-state ratchet
//	kloclint internal/fs internal/netsim   # specific package dirs
//
// -ownership-report renders the deterministic parallel-readiness
// inventory (the PR 10 sharded-engine spec) to the given file ("-"
// for stdout) and exits without linting; `make lint` fails when the
// checked-in copy drifts from the code.
//
// -ownership-ratchet compares the number of shared/unclassified
// inventory entries against the integer baseline in the given file
// and exits without linting. The count may only go down: growth is a
// failure (classify the new state, don't raise the baseline), and a
// drop below the baseline is also a failure until the baseline is
// lowered to lock the progress in.
//
// Exit status: 0 clean, 1 diagnostics (or load failures), 2 flag and
// usage errors — the same convention as klocbench.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"kloc/internal/analysis"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list the analyzer suite and exit")
		only        = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		jsonOut     = flag.Bool("json", false, "print diagnostics as a JSON array on stdout")
		sarifPath   = flag.String("sarif", "", "write diagnostics as SARIF 2.1.0 to this file")
		reportPath  = flag.String("ownership-report", "", "write the parallel-readiness inventory to this file (\"-\" for stdout) and exit")
		ratchetPath = flag.String("ownership-ratchet", "", "compare the shared-state count against the integer baseline in this file and exit")
	)
	flag.Usage = usage
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		for _, a := range analysis.AllModule() {
			fmt.Printf("%-16s %s (whole-module)\n", a.Name, a.Doc)
		}
		fmt.Printf("%-16s %s\n", analysis.SuppressAuditName, "stale or unknown //klocs:* markers (full-suite runs only)")
		return
	}
	pkgAnalyzers, modAnalyzers, err := selectAnalyzers(*only)
	if err != nil {
		usageError(err)
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	if *reportPath != "" {
		if err := writeOwnershipReport(loader, *reportPath); err != nil {
			fatal(err)
		}
		return
	}
	if *ratchetPath != "" {
		if err := checkOwnershipRatchet(loader, *ratchetPath); err != nil {
			fatal(err)
		}
		return
	}
	wholeModule := len(flag.Args()) == 0
	targets, err := resolveTargets(loader, flag.Args())
	if err != nil {
		usageError(err)
	}
	if !wholeModule && len(modAnalyzers) > 0 && *only != "" {
		usageError(fmt.Errorf("module analyzers need the whole module: drop the package arguments"))
	}

	// The suppression audit is only sound when every analyzer has had
	// its chance to need every marker: full suite, whole module.
	fullSuite := *only == "" && wholeModule
	var audit *analysis.MarkerAudit
	if fullSuite {
		audit = analysis.NewMarkerAudit()
	}

	exit := 0
	var diags []analysis.Diagnostic
	var pkgs []*analysis.Package
	for _, t := range targets {
		pkg, err := loader.Load(t.Dir, t.ImportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kloclint:", err)
			exit = 1
			continue
		}
		pkgs = append(pkgs, pkg)
		ds, err := analysis.RunAnalyzersAudited(pkg, pkgAnalyzers, audit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kloclint:", err)
			exit = 1
			continue
		}
		diags = append(diags, ds...)
	}
	if wholeModule && len(modAnalyzers) > 0 && exit == 0 {
		mod := analysis.NewModule(pkgs)
		ds, err := analysis.RunModuleAnalyzers(mod, modAnalyzers, audit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kloclint:", err)
			exit = 1
		} else {
			diags = append(diags, ds...)
		}
	}
	if fullSuite && exit == 0 {
		diags = append(diags, analysis.AuditSuppressions(pkgs, audit)...)
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	for i := range diags {
		diags[i].Pos.Filename = relPath(loader.ModuleDir, diags[i].Pos.Filename)
	}
	if len(diags) > 0 {
		exit = 1
	}

	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, diags); err != nil {
			fmt.Fprintln(os.Stderr, "kloclint:", err)
			exit = 1
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	os.Exit(exit)
}

// writeOwnershipReport loads the whole module and renders the
// deterministic parallel-readiness inventory.
func writeOwnershipReport(loader *analysis.Loader, path string) error {
	mod, err := loadWholeModule(loader)
	if err != nil {
		return err
	}
	report := analysis.OwnershipReport(mod)
	if path == "-" {
		_, err := os.Stdout.Write(report)
		return err
	}
	return os.WriteFile(path, report, 0o644)
}

// checkOwnershipRatchet enforces the monotone shared-state baseline:
// the count of shared/unclassified ownership entries may never exceed
// the checked-in integer, and when work drives it below the baseline
// the baseline must be lowered in the same change to lock it in.
func checkOwnershipRatchet(loader *analysis.Loader, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	baseline, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil {
		return fmt.Errorf("%s: baseline is not an integer: %v", path, err)
	}
	mod, err := loadWholeModule(loader)
	if err != nil {
		return err
	}
	count := analysis.OwnershipSharedCount(mod)
	switch {
	case count > baseline:
		return fmt.Errorf("ownership ratchet: %d shared/unclassified state entries, baseline %s allows %d — classify the new state into the lane/epoch/init/atomic taxonomy (see PARALLEL_READINESS.md) instead of raising the baseline", count, path, baseline)
	case count < baseline:
		return fmt.Errorf("ownership ratchet: %d shared/unclassified state entries, below the baseline %d — lower %s to %d to lock the progress in", count, baseline, path, count)
	}
	fmt.Printf("ownership ratchet: %d shared/unclassified state entries (baseline %d)\n", count, baseline)
	return nil
}

// loadWholeModule loads every lintable package and assembles the
// whole-module view the interprocedural analyzers run on.
func loadWholeModule(loader *analysis.Loader) (*analysis.Module, error) {
	targets, err := analysis.ModuleTargets(loader.ModuleDir, loader.ModulePath)
	if err != nil {
		return nil, err
	}
	var pkgs []*analysis.Package
	for _, t := range targets {
		pkg, err := loader.Load(t.Dir, t.ImportPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return analysis.NewModule(pkgs), nil
}

// relPath shortens a filename to be module-relative.
func relPath(root, name string) string {
	if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return name
}

// selectAnalyzers resolves -only against both suites.
func selectAnalyzers(only string) ([]*analysis.Analyzer, []*analysis.ModuleAnalyzer, error) {
	allPkg := analysis.All()
	allMod := analysis.AllModule()
	if only == "" {
		return allPkg, allMod, nil
	}
	pkgByName := make(map[string]*analysis.Analyzer, len(allPkg))
	modByName := make(map[string]*analysis.ModuleAnalyzer, len(allMod))
	var names []string
	for _, a := range allPkg {
		pkgByName[a.Name] = a
		names = append(names, a.Name)
	}
	for _, a := range allMod {
		modByName[a.Name] = a
		names = append(names, a.Name)
	}
	var pkgOut []*analysis.Analyzer
	var modOut []*analysis.ModuleAnalyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if a, ok := pkgByName[name]; ok {
			pkgOut = append(pkgOut, a)
			continue
		}
		if a, ok := modByName[name]; ok {
			modOut = append(modOut, a)
			continue
		}
		return nil, nil, fmt.Errorf("unknown analyzer %q (valid: %s)", name, strings.Join(names, ", "))
	}
	if len(pkgOut) == 0 && len(modOut) == 0 {
		return nil, nil, fmt.Errorf("-only selected no analyzers (valid: %s)", strings.Join(names, ", "))
	}
	return pkgOut, modOut, nil
}

// resolveTargets turns the positional arguments (package directories
// relative to the module root or the working directory) into load
// targets; with no arguments the whole module is linted.
func resolveTargets(loader *analysis.Loader, args []string) ([]analysis.Target, error) {
	if len(args) == 0 {
		return analysis.ModuleTargets(loader.ModuleDir, loader.ModulePath)
	}
	var out []analysis.Target
	for _, arg := range args {
		dir := arg
		if !filepath.IsAbs(dir) {
			if _, err := os.Stat(dir); err != nil {
				dir = filepath.Join(loader.ModuleDir, arg)
			}
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(loader.ModuleDir, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("package %s is outside the module", arg)
		}
		ip := loader.ModulePath
		if rel != "." {
			ip = loader.ModulePath + "/" + filepath.ToSlash(rel)
		}
		out = append(out, analysis.Target{Dir: abs, ImportPath: ip})
	}
	return out, nil
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"usage: kloclint [-list] [-only a,b] [-json] [-sarif file] [-ownership-report file] [-ownership-ratchet file] [package-dir ...]\n\n"+
			"Lints the module's packages with the invariant analyzer suite\n"+
			"(see internal/analysis and DESIGN.md §10). With no package\n"+
			"directories the whole module is linted, including the\n"+
			"interprocedural analyzers and the marker suppression audit.\n"+
			"-ownership-report instead renders the parallel-readiness\n"+
			"inventory (PARALLEL_READINESS.md) and exits;\n"+
			"-ownership-ratchet checks the shared-state count against a\n"+
			"checked-in baseline that may only go down.\n\nflags:\n")
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kloclint:", err)
	os.Exit(1)
}

func usageError(err error) {
	fmt.Fprintln(os.Stderr, "kloclint:", err)
	fmt.Fprintln(os.Stderr, "run 'kloclint -h' for usage")
	os.Exit(2)
}
