package main

import (
	"encoding/json"
	"os"
	"sort"

	"kloc/internal/analysis"
)

// SARIF 2.1.0 output, the format GitHub code scanning ingests to turn
// lint findings into PR annotations. Only the subset the upload
// action needs is emitted: one run, one driver, one rule per
// analyzer, one result per diagnostic with a physical location
// relative to the repository root.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the diagnostics (filenames already
// module-relative) as a SARIF log at path.
func writeSARIF(path string, diags []analysis.Diagnostic) error {
	ruleDocs := map[string]string{}
	for _, a := range analysis.All() {
		ruleDocs[a.Name] = a.Doc
	}
	for _, a := range analysis.AllModule() {
		ruleDocs[a.Name] = a.Doc
	}
	ruleDocs[analysis.SuppressAuditName] = "stale or unknown //klocs:* suppression markers"

	ruleSet := map[string]bool{}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		ruleSet[d.Analyzer] = true
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.Pos.Filename, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	ruleIDs := make([]string, 0, len(ruleSet))
	for id := range ruleSet {
		ruleIDs = append(ruleIDs, id)
	}
	sort.Strings(ruleIDs)
	rules := make([]sarifRule, 0, len(ruleIDs))
	for _, id := range ruleIDs {
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: ruleDocs[id]}})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "kloclint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
