// Command kloctrace runs one workload/policy pair and dumps a
// time-sliced trace of placement state: node occupancy by class,
// migration activity, and KLOC registry state — a debugging lens on
// what the policies actually do.
//
// Usage:
//
//	kloctrace -policy klocs -workload rocksdb -slices 10
package main

import (
	"flag"
	"fmt"
	"os"

	"kloc/internal/kernel"
	"kloc/internal/memsim"
	"kloc/internal/policy"
	"kloc/internal/sim"
	"kloc/internal/workload"
)

func main() {
	var (
		polName = flag.String("policy", "klocs", "tiering policy")
		wlName  = flag.String("workload", "rocksdb", "workload")
		slices  = flag.Int("slices", 10, "number of trace slices")
		durMS   = flag.Int("duration-ms", 200, "virtual duration in ms")
		seed    = flag.Uint64("seed", 42, "simulation seed")
		scale   = flag.Int("scale", 64, "platform scale divisor")
	)
	flag.Parse()

	mem := memsim.NewTwoTier(memsim.DefaultTwoTier(*scale))
	pol, err := policy.ByName(*polName)
	if err != nil {
		fatal(err)
	}
	wl, err := workload.ByName(*wlName, workload.Config{ScaleDiv: *scale})
	if err != nil {
		fatal(err)
	}

	eng := sim.NewEngine()
	k := kernel.New(eng, mem, pol)
	root := sim.NewRNG(*seed)
	if err := wl.Setup(k, root); err != nil {
		fatal(err)
	}
	k.Start()

	total := sim.Duration(*durMS) * sim.Millisecond
	slice := total / sim.Duration(*slices)

	// Drive the workload threads exactly as the harness does.
	for t := 0; t < wl.Threads(); t++ {
		t := t
		rng := root.Fork()
		var step func(*sim.Engine)
		step = func(e *sim.Engine) {
			if e.Now() >= sim.Time(0).Add(total) {
				return
			}
			ctx := k.NewCtx(t)
			if err := wl.Step(k, ctx, t, rng); err != nil {
				return
			}
			cost := ctx.Cost
			if cost < 100 {
				cost = 100
			}
			e.After(cost, step)
		}
		eng.Schedule(sim.Time(t), step)
	}

	fmt.Printf("trace: %s / %s on two-tier (fast=%d pages, slow=%d pages)\n\n",
		*polName, *wlName, mem.Node(memsim.FastNode).Capacity, mem.Node(memsim.SlowNode).Capacity)
	fmt.Printf("%-8s %-22s %-22s %-10s %-10s %s\n",
		"t", "fast used (cls app/$/slab)", "slow used", "demoted", "promoted", "kloc")

	var lastDem, lastProm uint64
	for i := 1; i <= *slices; i++ {
		deadline := sim.Time(0).Add(slice * sim.Duration(i))
		eng.RunUntil(deadline)
		fast := mem.Node(memsim.FastNode)
		slow := mem.Node(memsim.SlowNode)
		klocInfo := "-"
		if kp, ok := pol.(*policy.KLOCs); ok {
			klocInfo = fmt.Sprintf("knodes=%d meta=%dB hit=%.2f",
				kp.Reg.Len(), kp.Reg.MetadataBytes(), kp.Reg.FastPathHitRate())
		}
		fmt.Printf("%-8v %-22s %-22s %-10d %-10d %s\n",
			sim.Duration(deadline),
			occupancy(mem, memsim.FastNode, fast.Capacity),
			occupancy(mem, memsim.SlowNode, slow.Capacity),
			mem.Stats.Demotions-lastDem,
			mem.Stats.Promotions-lastProm,
			klocInfo)
		lastDem, lastProm = mem.Stats.Demotions, mem.Stats.Promotions
	}
}

func occupancy(m *memsim.Memory, node memsim.NodeID, cap_ int) string {
	var byClass [6]int
	for _, f := range m.FramesOn(node) {
		byClass[f.Class]++
	}
	used := m.Node(node).Used()
	return fmt.Sprintf("%d/%d (%d/%d/%d)", used, cap_,
		byClass[memsim.ClassApp], byClass[memsim.ClassCache],
		byClass[memsim.ClassSlab]+byClass[memsim.ClassKloc]+byClass[memsim.ClassMeta])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kloctrace:", err)
	os.Exit(1)
}
