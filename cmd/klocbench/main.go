// Command klocbench regenerates the paper's performance tables and
// figures (Fig 4, Table 6, Fig 5a/5b/5c, Fig 6, the §7.3 prefetch
// study, the design ablations, and the fault/pressure robustness
// tables), or executes one raw run with optional tracing.
//
// Usage:
//
//	klocbench -exp fig4                 # one experiment
//	klocbench -exp fig4,fig5a           # a comma-separated list
//	klocbench -exp all                  # the full evaluation
//	klocbench -exp cluster              # serving-plane sweep -> BENCH_cluster.json
//	klocbench -exp fig4 -quick          # reduced duration
//	klocbench -run -policy klocs -workload rocksdb   # one raw run
//	klocbench -run -trace run.json      # raw run + Chrome trace export
//	klocbench -run -sanitize            # raw run + KASAN/kmemleak report
//
// Flag-parse and flag-validation errors exit 2; runtime errors exit 1;
// -sanitize findings exit 1 too (a dirty report is a failed run).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kloc"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id ("+strings.Join(kloc.ExperimentNames(), ", ")+", a comma-separated list, or 'all')")
		quick    = flag.Bool("quick", false, "reduced virtual duration (faster, noisier)")
		duration = flag.Int("duration-ms", 0, "override measured duration in virtual milliseconds")
		seed     = flag.Uint64("seed", 42, "simulation seed")
		scale    = flag.Int("scale", 64, "platform scale divisor (Table 4 sizes / scale)")

		rawRun   = flag.Bool("run", false, "execute one raw run instead of an experiment")
		policy   = flag.String("policy", "klocs", "policy for -run")
		workload = flag.String("workload", "rocksdb", "workload for -run")
		optane   = flag.Bool("optane", false, "use the Optane Memory-Mode platform for -run")

		traceFile   = flag.String("trace", "", "with -run: write the run's trace to this file (.json = Chrome trace-event format, else text; see OBSERVABILITY.md)")
		traceEvents = flag.String("trace-events", "", "comma-separated event-name patterns to trace (\"alloc.*,oom.spill\"); empty traces the full catalog")
		sanitize    = flag.Bool("sanitize", false, "with -run: arm the KASAN/kmemleak-analog sanitizer; findings fail the run (exit 1)")
		benchOut    = flag.String("bench-out", "BENCH_cluster.json", "with -exp cluster: write the machine-readable sweep to this file")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		usageError(fmt.Errorf("unexpected arguments: %s", strings.Join(flag.Args(), " ")))
	}

	opts := kloc.DefaultOptions()
	if *quick {
		opts = kloc.QuickOptions()
	}
	opts.Seed = *seed
	opts.ScaleDiv = *scale
	if *duration > 0 {
		opts.Duration = kloc.Duration(*duration) * kloc.Millisecond
	}

	if !*rawRun && (*traceFile != "" || *traceEvents != "") {
		usageError(fmt.Errorf("-trace/-trace-events require -run (experiments aggregate many runs; trace one of them instead)"))
	}
	if !*rawRun && *sanitize {
		usageError(fmt.Errorf("-sanitize requires -run (experiments aggregate many runs; sanitize one of them instead)"))
	}

	if *rawRun {
		cfg := kloc.RunConfig{
			PolicyName: *policy,
			Workload:   *workload,
			ScaleDiv:   opts.ScaleDiv,
			Seed:       opts.Seed,
			Duration:   opts.Duration,
		}
		if *optane {
			cfg.Platform = kloc.Optane
			cfg.MoveTaskAtFrac = 0.1
		}
		cfg.Sanitize = *sanitize
		if *traceFile != "" {
			tc := kloc.TraceConfig{}
			if *traceEvents != "" {
				for _, p := range strings.Split(*traceEvents, ",") {
					if p = strings.TrimSpace(p); p != "" {
						tc.Events = append(tc.Events, p)
					}
				}
			}
			cfg.Trace = &tc
		}
		res, err := kloc.Run(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("policy=%s workload=%s\n", res.Policy, res.Workload)
		fmt.Printf("  ops=%d virtual-time=%v throughput=%.0f ops/s\n", res.Ops, res.VirtualTime, res.Throughput)
		fmt.Printf("  refs: kernel=%d app=%d\n", res.KernRefs, res.AppRefs)
		fmt.Printf("  migrations: total=%d demotions=%d promotions=%d\n",
			res.Mem.MigratedPages, res.Mem.Demotions, res.Mem.Promotions)
		if res.KlocMetadataBytes > 0 {
			fmt.Printf("  kloc metadata: %d bytes (scaled), fast-path hit rate %.2f\n",
				res.KlocMetadataBytes, res.FastPathHitRate)
		}
		if res.Trace != nil {
			printTraceSummary(res.TraceStats)
			if err := writeTrace(res.Trace, *traceFile); err != nil {
				fatal(err)
			}
			fmt.Printf("  trace written to %s\n", *traceFile)
		}
		if res.Sanitize != nil {
			fmt.Print("  " + strings.ReplaceAll(strings.TrimSuffix(res.Sanitize.String(), "\n"), "\n", "\n  ") + "\n")
			if !res.Sanitize.Clean() {
				fatal(fmt.Errorf("sanitizer reported %d findings and %d leaks",
					res.Sanitize.TotalFindings, res.Sanitize.TotalLeaks))
			}
		}
		return
	}

	if *exp == "" {
		usageError(fmt.Errorf("nothing to do: pass -exp <id> or -run"))
	}
	names, err := resolveExperiments(*exp)
	if err != nil {
		usageError(err)
	}
	for _, name := range names {
		if name == "cluster" {
			if err := runClusterBench(opts, *benchOut); err != nil {
				fatal(fmt.Errorf("cluster: %w", err))
			}
			continue
		}
		table, err := kloc.Experiment(name, opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println(table)
	}
}

// runClusterBench executes the cluster serving-plane sweep and writes
// the machine-readable report beside the rendered table.
func runClusterBench(opts kloc.Options, out string) error {
	table, rep, err := kloc.ClusterBench(opts)
	if err != nil {
		return err
	}
	fmt.Println(table)
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("cluster sweep written to %s\n", out)
	return nil
}

// usage enumerates every flag; the satellite fix for the old help text
// that documented only a subset.
func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"usage: klocbench -exp <id>[,<id>...] [-quick] [-duration-ms N] [-seed N] [-scale N]\n"+
			"       klocbench -run [-policy P] [-workload W] [-optane] [-sanitize] [-trace FILE [-trace-events GLOBS]]\n\n"+
			"experiments: %s (or 'all'); 'cluster' runs the serving-plane\n"+
			"sweep and writes BENCH_cluster.json (see -bench-out)\n\nflags:\n",
		strings.Join(kloc.ExperimentNames(), ", "))
	flag.PrintDefaults()
}

// printTraceSummary renders the per-event and per-context trace stats.
func printTraceSummary(s kloc.TraceStats) {
	fmt.Printf("  trace: emitted=%d dropped=%d (ring kept %d)\n",
		s.Emitted, s.Dropped, s.Emitted-s.Dropped)
	for _, nc := range s.ByName {
		fmt.Printf("    %-24s %d\n", nc.Name, nc.Count)
	}
	if len(s.Contexts) > 0 {
		fmt.Printf("  busiest KLOC contexts (events per %v window):\n", s.Window)
		for _, c := range s.Contexts {
			fmt.Printf("    ctx=%-6d total=%d windows=%v\n", c.Ctx, c.Total, c.Windows)
		}
	}
}

// writeTrace exports the tracer: Chrome trace-event JSON for .json
// files, the text log otherwise.
func writeTrace(t *kloc.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = t.WriteChrome(f)
	} else {
		err = t.WriteText(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// resolveExperiments expands the -exp flag into experiment IDs: "all",
// a single ID, or a comma-separated list. Unknown IDs are rejected up
// front with the valid set, so a typo fails fast instead of after an
// hour of earlier experiments. The "cluster" sweep is addressable by
// name but deliberately outside "all": it reports serving-plane
// metrics (goodput, availability), not the paper's figures.
func resolveExperiments(exp string) ([]string, error) {
	if exp == "all" {
		return kloc.ExperimentNames(), nil
	}
	valid := map[string]bool{"cluster": true}
	for _, n := range kloc.ExperimentNames() {
		valid[n] = true
	}
	var names []string
	for _, n := range strings.Split(exp, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !valid[n] {
			return nil, fmt.Errorf("unknown experiment %q (valid: %s, cluster, or 'all')",
				n, strings.Join(kloc.ExperimentNames(), ", "))
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no experiment named (valid: %s, cluster, or 'all')",
			strings.Join(kloc.ExperimentNames(), ", "))
	}
	return names, nil
}

// fatal reports a runtime failure (exit 1). Flag-validation problems go
// through usageError (exit 2) per Go CLI convention.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "klocbench:", err)
	os.Exit(1)
}

func usageError(err error) {
	fmt.Fprintln(os.Stderr, "klocbench:", err)
	fmt.Fprintln(os.Stderr, "run 'klocbench -h' for usage")
	os.Exit(2)
}
