// Command klocbench regenerates the paper's performance tables and
// figures (Fig 4, Table 6, Fig 5a/5b/5c, Fig 6, the §7.3 prefetch
// study, and the design ablations).
//
// Usage:
//
//	klocbench -exp fig4                 # one experiment
//	klocbench -exp all                  # the full evaluation
//	klocbench -exp fig4 -quick          # reduced duration
//	klocbench -run -policy klocs -workload rocksdb   # one raw run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kloc"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id ("+strings.Join(kloc.ExperimentNames(), ", ")+", or 'all')")
		quick    = flag.Bool("quick", false, "reduced virtual duration (faster, noisier)")
		duration = flag.Int("duration-ms", 0, "override measured duration in virtual milliseconds")
		seed     = flag.Uint64("seed", 42, "simulation seed")
		scale    = flag.Int("scale", 64, "platform scale divisor (Table 4 sizes / scale)")

		rawRun   = flag.Bool("run", false, "execute one raw run instead of an experiment")
		policy   = flag.String("policy", "klocs", "policy for -run")
		workload = flag.String("workload", "rocksdb", "workload for -run")
		optane   = flag.Bool("optane", false, "use the Optane Memory-Mode platform for -run")
	)
	flag.Parse()

	opts := kloc.DefaultOptions()
	if *quick {
		opts = kloc.QuickOptions()
	}
	opts.Seed = *seed
	opts.ScaleDiv = *scale
	if *duration > 0 {
		opts.Duration = kloc.Duration(*duration) * kloc.Millisecond
	}

	if *rawRun {
		cfg := kloc.RunConfig{
			PolicyName: *policy,
			Workload:   *workload,
			ScaleDiv:   opts.ScaleDiv,
			Seed:       opts.Seed,
			Duration:   opts.Duration,
		}
		if *optane {
			cfg.Platform = kloc.Optane
			cfg.MoveTaskAtFrac = 0.1
		}
		res, err := kloc.Run(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("policy=%s workload=%s\n", res.Policy, res.Workload)
		fmt.Printf("  ops=%d virtual-time=%v throughput=%.0f ops/s\n", res.Ops, res.VirtualTime, res.Throughput)
		fmt.Printf("  refs: kernel=%d app=%d\n", res.KernRefs, res.AppRefs)
		fmt.Printf("  migrations: total=%d demotions=%d promotions=%d\n",
			res.Mem.MigratedPages, res.Mem.Demotions, res.Mem.Promotions)
		if res.KlocMetadataBytes > 0 {
			fmt.Printf("  kloc metadata: %d bytes (scaled), fast-path hit rate %.2f\n",
				res.KlocMetadataBytes, res.FastPathHitRate)
		}
		return
	}

	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	names, err := resolveExperiments(*exp)
	if err != nil {
		fatal(err)
	}
	for _, name := range names {
		table, err := kloc.Experiment(name, opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println(table)
	}
}

// resolveExperiments expands the -exp flag into experiment IDs: "all",
// a single ID, or a comma-separated list. Unknown IDs are rejected up
// front with the valid set, so a typo fails fast instead of after an
// hour of earlier experiments.
func resolveExperiments(exp string) ([]string, error) {
	if exp == "all" {
		return kloc.ExperimentNames(), nil
	}
	valid := make(map[string]bool)
	for _, n := range kloc.ExperimentNames() {
		valid[n] = true
	}
	var names []string
	for _, n := range strings.Split(exp, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !valid[n] {
			return nil, fmt.Errorf("unknown experiment %q (valid: %s, or 'all')",
				n, strings.Join(kloc.ExperimentNames(), ", "))
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no experiment named (valid: %s, or 'all')",
			strings.Join(kloc.ExperimentNames(), ", "))
	}
	return names, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "klocbench:", err)
	os.Exit(1)
}
