// Command klocbench regenerates the paper's performance tables and
// figures (Fig 4, Table 6, Fig 5a/5b/5c, Fig 6, the §7.3 prefetch
// study, the design ablations, and the fault/pressure robustness
// tables), or executes one raw run with optional tracing.
//
// Usage:
//
//	klocbench -exp fig4                 # one experiment
//	klocbench -exp fig4,fig5a           # a comma-separated list
//	klocbench -exp all                  # the full evaluation
//	klocbench -exp all,cluster,chaos    # 'all' composes with the extras
//	klocbench -exp cluster              # serving-plane sweep -> BENCH_cluster.json
//	klocbench -exp chaos                # chaos campaign -> BENCH_chaos.json
//	klocbench -exp chaos -quick         # fixed-seed 50-schedule smoke campaign
//	klocbench -exp chaos -replay CHAOS_repro_X.json  # re-run a minimized repro
//	klocbench -exp perf                 # accounting-variant sweep -> BENCH_perf.json
//	klocbench -exp perf -quick -perf-wall  # + machine-dependent wall metrics in the JSON
//	klocbench -exp fig4 -quick          # reduced duration
//	klocbench -run -policy klocs -workload rocksdb   # one raw run
//	klocbench -run -trace run.json      # raw run + Chrome trace export
//	klocbench -run -sanitize            # raw run + KASAN/kmemleak report
//
// Flag-parse and flag-validation errors exit 2; runtime errors exit 1;
// -sanitize findings exit 1 too (a dirty report is a failed run).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kloc"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id ("+strings.Join(kloc.ExperimentNames(), ", ")+", a comma-separated list, or 'all')")
		quick    = flag.Bool("quick", false, "reduced virtual duration (faster, noisier)")
		duration = flag.Int("duration-ms", 0, "override measured duration in virtual milliseconds")
		seed     = flag.Uint64("seed", 42, "simulation seed")
		scale    = flag.Int("scale", 64, "platform scale divisor (Table 4 sizes / scale)")

		rawRun   = flag.Bool("run", false, "execute one raw run instead of an experiment")
		policy   = flag.String("policy", "klocs", "policy for -run")
		workload = flag.String("workload", "rocksdb", "workload for -run")
		optane   = flag.Bool("optane", false, "use the Optane Memory-Mode platform for -run")

		traceFile   = flag.String("trace", "", "with -run: write the run's trace to this file (.json = Chrome trace-event format, else text; see OBSERVABILITY.md)")
		traceEvents = flag.String("trace-events", "", "comma-separated event-name patterns to trace (\"alloc.*,oom.spill\"); empty traces the full catalog")
		sanitize    = flag.Bool("sanitize", false, "with -run: arm the KASAN/kmemleak-analog sanitizer; findings fail the run (exit 1)")
		benchOut    = flag.String("bench-out", "BENCH_cluster.json", "with -exp cluster: write the machine-readable sweep to this file")

		perfOut  = flag.String("perf-out", "BENCH_perf.json", "with -exp perf: write the machine-readable sweep to this file")
		perfWall = flag.Bool("perf-wall", false, "with -exp perf: include wall-clock metrics (events/sec, p95, allocs/op) in the JSON; off keeps the report byte-identical across runs (PERFORMANCE.md)")

		chaosTarget = flag.String("chaos-target", "cluster", "with -exp chaos: campaign target (cluster or machine)")
		chaosOut    = flag.String("chaos-out", "BENCH_chaos.json", "with -exp chaos: write the machine-readable campaign summary to this file")
		replayFile  = flag.String("replay", "", "with -exp chaos: replay a CHAOS_repro_*.json artifact instead of running a campaign; a non-reproducing or non-deterministic replay fails (exit 1)")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		usageError(fmt.Errorf("unexpected arguments: %s", strings.Join(flag.Args(), " ")))
	}

	opts := kloc.DefaultOptions()
	if *quick {
		opts = kloc.QuickOptions()
	}
	opts.Seed = *seed
	opts.ScaleDiv = *scale
	if *duration > 0 {
		opts.Duration = kloc.Duration(*duration) * kloc.Millisecond
	}

	if !*rawRun && (*traceFile != "" || *traceEvents != "") {
		usageError(fmt.Errorf("-trace/-trace-events require -run (experiments aggregate many runs; trace one of them instead)"))
	}
	if !*rawRun && *sanitize {
		usageError(fmt.Errorf("-sanitize requires -run (experiments aggregate many runs; sanitize one of them instead)"))
	}

	if *rawRun {
		cfg := kloc.RunConfig{
			PolicyName: *policy,
			Workload:   *workload,
			ScaleDiv:   opts.ScaleDiv,
			Seed:       opts.Seed,
			Duration:   opts.Duration,
		}
		if *optane {
			cfg.Platform = kloc.Optane
			cfg.MoveTaskAtFrac = 0.1
		}
		cfg.Sanitize = *sanitize
		if *traceFile != "" {
			tc := kloc.TraceConfig{}
			if *traceEvents != "" {
				for _, p := range strings.Split(*traceEvents, ",") {
					if p = strings.TrimSpace(p); p != "" {
						tc.Events = append(tc.Events, p)
					}
				}
			}
			cfg.Trace = &tc
		}
		res, err := kloc.Run(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("policy=%s workload=%s\n", res.Policy, res.Workload)
		fmt.Printf("  ops=%d virtual-time=%v throughput=%.0f ops/s\n", res.Ops, res.VirtualTime, res.Throughput)
		fmt.Printf("  refs: kernel=%d app=%d\n", res.KernRefs, res.AppRefs)
		fmt.Printf("  migrations: total=%d demotions=%d promotions=%d\n",
			res.Mem.MigratedPages, res.Mem.Demotions, res.Mem.Promotions)
		if res.KlocMetadataBytes > 0 {
			fmt.Printf("  kloc metadata: %d bytes (scaled), fast-path hit rate %.2f\n",
				res.KlocMetadataBytes, res.FastPathHitRate)
		}
		if res.Trace != nil {
			printTraceSummary(res.TraceStats)
			if err := writeTrace(res.Trace, *traceFile); err != nil {
				fatal(err)
			}
			fmt.Printf("  trace written to %s\n", *traceFile)
		}
		if res.Sanitize != nil {
			fmt.Print("  " + strings.ReplaceAll(strings.TrimSuffix(res.Sanitize.String(), "\n"), "\n", "\n  ") + "\n")
			if !res.Sanitize.Clean() {
				fatal(fmt.Errorf("sanitizer reported %d findings and %d leaks",
					res.Sanitize.TotalFindings, res.Sanitize.TotalLeaks))
			}
		}
		return
	}

	if *exp == "" {
		usageError(fmt.Errorf("nothing to do: pass -exp <id> or -run"))
	}
	if *replayFile != "" && *exp != "chaos" {
		usageError(fmt.Errorf("-replay requires -exp chaos (a replay re-runs one chaos repro, nothing else)"))
	}
	names, err := resolveExperiments(*exp)
	if err != nil {
		usageError(err)
	}
	for _, name := range names {
		switch name {
		case "perf":
			if err := runPerfBench(opts, *quick, *perfWall, *perfOut); err != nil {
				fatal(fmt.Errorf("perf: %w", err))
			}
		case "cluster":
			if err := runClusterBench(opts, *benchOut); err != nil {
				fatal(fmt.Errorf("cluster: %w", err))
			}
		case "chaos":
			if *replayFile != "" {
				if err := runChaosReplay(*replayFile); err != nil {
					fatal(fmt.Errorf("chaos replay: %w", err))
				}
				continue
			}
			if err := runChaosCampaign(*chaosTarget, *seed, *quick, *chaosOut); err != nil {
				fatal(fmt.Errorf("chaos: %w", err))
			}
		default:
			table, err := kloc.Experiment(name, opts)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
			fmt.Println(table)
		}
	}
}

// runPerfBench executes the accounting-variant sweep (PERFORMANCE.md)
// and writes BENCH_perf.json. This is the tree's single sanctioned
// wall-clock read: the perf harness must measure real throughput, and
// injects the reading as a clock function so measurement can never
// leak into simulation state. A sweep whose optimized variants run
// slower than the exact baseline fails (exit 1).
func runPerfBench(opts kloc.Options, quick, wall bool, out string) error {
	cfg := kloc.PerfConfig{Seed: opts.Seed, Quick: quick, IncludeWall: wall}
	//klocs:wallclock perf measurement only; the simulation stays in virtual time
	base := time.Now()
	//klocs:wallclock perf measurement only (monotonic delta against base)
	cfg.Now = func() int64 { return time.Now().Sub(base).Nanoseconds() }
	table, rep, err := kloc.PerfBench(cfg)
	if err != nil {
		return err
	}
	fmt.Println(table)
	for _, line := range rep.LaneLines() {
		fmt.Println(line)
	}
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("perf sweep written to %s\n", out)
	return rep.SanityCheck()
}

// runChaosCampaign executes a chaos campaign and writes the summary
// plus one replay artifact per violation. A violating campaign exits 1:
// the artifacts are the bug reports.
func runChaosCampaign(target string, seed uint64, quick bool, out string) error {
	cfg := kloc.ChaosConfig{Target: target, Seed: seed}
	if !quick {
		// The full campaign samples four times the smoke campaign's
		// schedules with denser injections.
		cfg.Schedules = 200
		cfg.MaxInjections = 8
	}
	sum, arts, err := kloc.RunChaosCampaign(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("chaos: target=%s seed=%d schedules=%d injections=%d determinism-runs=%d\n",
		sum.Target, sum.Seed, sum.Schedules, sum.Injections, sum.DeterminismRuns)
	fmt.Printf("chaos: oracles: %s\n", strings.Join(sum.OraclesChecked, ", "))
	for _, art := range arts {
		data, err := art.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(art.Filename(), append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	for _, v := range sum.Violations {
		fmt.Printf("chaos: VIOLATION schedule=%d oracle=%s %s\n", v.ScheduleIndex, v.Oracle, v.Detail)
		fmt.Printf("chaos:   minimized %d -> %d injections in %d probes; repro: %s\n",
			v.OriginalInjections, v.MinimizedInjections, v.MinimizeProbes, v.Artifact)
	}
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("chaos: summary written to %s\n", out)
	if !sum.Clean {
		return fmt.Errorf("%d invariant violations (repro artifacts written)", len(sum.Violations))
	}
	fmt.Println("chaos: campaign clean")
	return nil
}

// runChaosReplay re-executes a minimized repro artifact twice and
// verifies the violation reproduces with byte-identical traces.
func runChaosReplay(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	art, err := kloc.ParseChaosArtifact(data)
	if err != nil {
		return err
	}
	fmt.Printf("chaos: replaying %s: target=%s oracle=%s injections=%d\n",
		path, art.Target, art.Oracle, len(art.Schedule.Injections))
	rep, err := kloc.ChaosReplay(art)
	if err != nil {
		return err
	}
	if rep.Violation != nil {
		fmt.Printf("chaos: reproduced oracle=%s %s\n", rep.Violation.Oracle, rep.Violation.Detail)
	}
	fmt.Printf("chaos: deterministic=%v trace-fnv=%016x (artifact pinned %016x)\n",
		rep.Deterministic, rep.TraceFNV, art.TraceFNV)
	switch {
	case rep.Violation == nil:
		return fmt.Errorf("violation did not reproduce (fixed, or the substrate changed)")
	case !rep.OracleMatch:
		return fmt.Errorf("reproduced %s but the artifact pinned %s", rep.Violation.Oracle, art.Oracle)
	case !rep.Deterministic:
		return fmt.Errorf("traces diverged across re-execution")
	case !rep.TraceMatch:
		return fmt.Errorf("violation reproduced but the trace drifted from the artifact's fingerprint")
	}
	fmt.Println("chaos: repro confirmed, byte-identical across two executions")
	return nil
}

// runClusterBench executes the cluster serving-plane sweep and writes
// the machine-readable report beside the rendered table.
func runClusterBench(opts kloc.Options, out string) error {
	table, rep, err := kloc.ClusterBench(opts)
	if err != nil {
		return err
	}
	fmt.Println(table)
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("cluster sweep written to %s\n", out)
	return nil
}

// usage enumerates every flag; the satellite fix for the old help text
// that documented only a subset.
func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"usage: klocbench -exp <id>[,<id>...] [-quick] [-duration-ms N] [-seed N] [-scale N]\n"+
			"       klocbench -exp chaos [-quick] [-chaos-target T] [-replay FILE]\n"+
			"       klocbench -exp perf [-quick] [-perf-wall] [-perf-out FILE]\n"+
			"       klocbench -run [-policy P] [-workload W] [-optane] [-sanitize] [-trace FILE [-trace-events GLOBS]]\n\n"+
			"experiments: %s\n"+
			"'all' expands to the paper experiments above and composes with the extras\n"+
			"('all,cluster,chaos,perf' appends them). The extras are excluded from 'all':\n"+
			"  cluster  serving-plane sweep -> BENCH_cluster.json (see -bench-out)\n"+
			"  chaos    fault-schedule fuzzing campaign -> BENCH_chaos.json plus one\n"+
			"           CHAOS_repro_*.json replay artifact per invariant violation;\n"+
			"           violations exit 1 (see -chaos-target, -chaos-out, -replay)\n"+
			"  perf     hot-path accounting-variant sweep -> BENCH_perf.json\n"+
			"           (PERFORMANCE.md; see -perf-out, -perf-wall)\n\nflags:\n",
		strings.Join(kloc.ExperimentNames(), ", "))
	flag.PrintDefaults()
}

// printTraceSummary renders the per-event and per-context trace stats.
func printTraceSummary(s kloc.TraceStats) {
	fmt.Printf("  trace: emitted=%d dropped=%d (ring kept %d)\n",
		s.Emitted, s.Dropped, s.Emitted-s.Dropped)
	for _, nc := range s.ByName {
		fmt.Printf("    %-24s %d\n", nc.Name, nc.Count)
	}
	if len(s.Contexts) > 0 {
		fmt.Printf("  busiest KLOC contexts (events per %v window):\n", s.Window)
		for _, c := range s.Contexts {
			fmt.Printf("    ctx=%-6d total=%d windows=%v\n", c.Ctx, c.Total, c.Windows)
		}
	}
}

// writeTrace exports the tracer: Chrome trace-event JSON for .json
// files, the text log otherwise.
func writeTrace(t *kloc.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = t.WriteChrome(f)
	} else {
		err = t.WriteText(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// resolveExperiments expands the -exp flag into experiment IDs: a
// single ID, a comma-separated list, or "all" — which expands to the
// paper experiments and composes with the extras ("all,cluster,chaos"
// appends both). Unknown IDs are rejected up front with the valid set,
// so a typo fails fast instead of after an hour of earlier
// experiments. "cluster", "chaos", and "perf" are addressable by name
// but deliberately outside "all": the sweep reports serving-plane
// metrics (goodput, availability), the campaign hunts invariant
// violations, and the perf sweep measures the simulator's own hot
// paths — none regenerates a paper figure.
func resolveExperiments(exp string) ([]string, error) {
	valid := map[string]bool{"cluster": true, "chaos": true, "perf": true}
	for _, n := range kloc.ExperimentNames() {
		valid[n] = true
	}
	var names []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, n := range strings.Split(exp, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if n == "all" {
			for _, e := range kloc.ExperimentNames() {
				add(e)
			}
			continue
		}
		if !valid[n] {
			return nil, fmt.Errorf("unknown experiment %q (valid: %s, cluster, chaos, perf, or 'all')",
				n, strings.Join(kloc.ExperimentNames(), ", "))
		}
		add(n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no experiment named (valid: %s, cluster, chaos, perf, or 'all')",
			strings.Join(kloc.ExperimentNames(), ", "))
	}
	return names, nil
}

// fatal reports a runtime failure (exit 1). Flag-validation problems go
// through usageError (exit 2) per Go CLI convention.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "klocbench:", err)
	os.Exit(1)
}

func usageError(err error) {
	fmt.Fprintln(os.Stderr, "klocbench:", err)
	fmt.Fprintln(os.Stderr, "run 'klocbench -h' for usage")
	os.Exit(2)
}
