package main

import (
	"strings"
	"testing"

	"kloc"
)

func TestResolveExperimentsSingle(t *testing.T) {
	names, err := resolveExperiments("fig4")
	if err != nil || len(names) != 1 || names[0] != "fig4" {
		t.Fatalf("resolve fig4 = %v, %v", names, err)
	}
}

func TestResolveExperimentsAll(t *testing.T) {
	names, err := resolveExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(kloc.ExperimentNames()) {
		t.Fatalf("all = %d experiments, want %d", len(names), len(kloc.ExperimentNames()))
	}
}

func TestResolveExperimentsList(t *testing.T) {
	names, err := resolveExperiments("faults, pressure")
	if err != nil || len(names) != 2 || names[0] != "faults" || names[1] != "pressure" {
		t.Fatalf("resolve list = %v, %v", names, err)
	}
}

func TestResolveExperimentsUnknownListsValid(t *testing.T) {
	_, err := resolveExperiments("fig99")
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// The error must teach the valid set, including the newest entry.
	for _, want := range []string{"fig99", "fig4", "pressure", "all"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	if _, err := resolveExperiments(""); err == nil {
		t.Fatal("empty experiment accepted")
	}
	if _, err := resolveExperiments(" , "); err == nil {
		t.Fatal("blank list accepted")
	}
}

// TestSanitizedRunSmoke drives a -sanitize raw run through the same
// library call main makes and checks the report comes back clean.
func TestSanitizedRunSmoke(t *testing.T) {
	res, err := kloc.Run(kloc.RunConfig{
		PolicyName: "klocs", Workload: "rocksdb",
		Duration: 5 * kloc.Millisecond, Sanitize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sanitize == nil {
		t.Fatal("no sanitizer report on a -sanitize run")
	}
	if !res.Sanitize.Clean() {
		t.Fatalf("sanitizer dirty:\n%s", res.Sanitize)
	}
	if !strings.Contains(res.Sanitize.String(), "sanitizer:") {
		t.Fatalf("report rendering: %q", res.Sanitize.String())
	}
}

// TestExperimentSmoke drives one real experiment end to end through
// the same entry point main uses, at a tiny scale.
func TestExperimentSmoke(t *testing.T) {
	opts := kloc.Options{ScaleDiv: 256, Duration: 5 * kloc.Millisecond, Seed: 42,
		Workloads: []string{"rocksdb"}}
	tbl, err := kloc.Experiment("fig2d", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "rocksdb") {
		t.Fatalf("table missing workload row:\n%s", tbl)
	}
}
