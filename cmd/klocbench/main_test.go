package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kloc"
)

func TestResolveExperimentsSingle(t *testing.T) {
	names, err := resolveExperiments("fig4")
	if err != nil || len(names) != 1 || names[0] != "fig4" {
		t.Fatalf("resolve fig4 = %v, %v", names, err)
	}
}

func TestResolveExperimentsAll(t *testing.T) {
	names, err := resolveExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(kloc.ExperimentNames()) {
		t.Fatalf("all = %d experiments, want %d", len(names), len(kloc.ExperimentNames()))
	}
}

// TestResolveExperimentsAllComposes pins the -exp list semantics: "all"
// expands in place and composes with the extras outside it, without
// duplicates.
func TestResolveExperimentsAllComposes(t *testing.T) {
	names, err := resolveExperiments("all,cluster,chaos")
	if err != nil {
		t.Fatal(err)
	}
	if want := len(kloc.ExperimentNames()) + 2; len(names) != want {
		t.Fatalf("all,cluster,chaos = %d experiments, want %d: %v", len(names), want, names)
	}
	if names[len(names)-2] != "cluster" || names[len(names)-1] != "chaos" {
		t.Fatalf("extras not appended after 'all': %v", names)
	}
	for _, n := range names[:len(names)-2] {
		if n == "cluster" || n == "chaos" {
			t.Fatalf("'all' must exclude the extras: %v", names)
		}
	}

	// Duplicates collapse, wherever they come from.
	names, err = resolveExperiments("fig4,all,fig4,chaos,chaos")
	if err != nil {
		t.Fatal(err)
	}
	if want := len(kloc.ExperimentNames()) + 1; len(names) != want {
		t.Fatalf("deduped list = %d experiments, want %d: %v", len(names), want, names)
	}
	if names[0] != "fig4" {
		t.Fatalf("explicit order not preserved: %v", names)
	}
}

func TestResolveExperimentsChaos(t *testing.T) {
	names, err := resolveExperiments("chaos")
	if err != nil || len(names) != 1 || names[0] != "chaos" {
		t.Fatalf("resolve chaos = %v, %v", names, err)
	}
}

func TestResolveExperimentsList(t *testing.T) {
	names, err := resolveExperiments("faults, pressure")
	if err != nil || len(names) != 2 || names[0] != "faults" || names[1] != "pressure" {
		t.Fatalf("resolve list = %v, %v", names, err)
	}
}

func TestResolveExperimentsUnknownListsValid(t *testing.T) {
	_, err := resolveExperiments("fig99")
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// The error must teach the valid set, including the newest entry.
	for _, want := range []string{"fig99", "fig4", "pressure", "all"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	if _, err := resolveExperiments(""); err == nil {
		t.Fatal("empty experiment accepted")
	}
	if _, err := resolveExperiments(" , "); err == nil {
		t.Fatal("blank list accepted")
	}
}

// TestChaosReplayRoundTrip drives the -exp chaos -replay path end to
// end: a campaign against a reintroduced defect emits a minimized
// artifact, the artifact round-trips through disk, and runChaosReplay
// (the -replay entry point) confirms the repro byte-identically.
func TestChaosReplayRoundTrip(t *testing.T) {
	_, arts, err := kloc.RunChaosCampaign(kloc.ChaosConfig{
		Target: kloc.ChaosTargetCluster, Schedules: 10, Seed: 42,
		MaxInjections: 4, ScaleDiv: 512,
		Duration: 4 * kloc.Millisecond, SettleBound: 30 * kloc.Millisecond,
		DeterminismEvery: -1, Bug: "hedge-slot-leak",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) == 0 {
		t.Fatal("bug-fixture campaign produced no repro artifact")
	}
	art := arts[0]
	if len(art.Schedule.Injections) > 3 {
		t.Fatalf("repro has %d injections, want <= 3", len(art.Schedule.Injections))
	}
	data, err := art.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), art.Filename())
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runChaosReplay(path); err != nil {
		t.Fatalf("replay of fresh artifact failed: %v", err)
	}

	// A tampered fingerprint must fail the replay: the artifact pins the
	// violating trace, not just the violation.
	bad := *art
	bad.TraceFNV++
	data, err = bad.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runChaosReplay(path); err == nil {
		t.Fatal("replay accepted a tampered trace fingerprint")
	}
}

// TestSanitizedRunSmoke drives a -sanitize raw run through the same
// library call main makes and checks the report comes back clean.
func TestSanitizedRunSmoke(t *testing.T) {
	res, err := kloc.Run(kloc.RunConfig{
		PolicyName: "klocs", Workload: "rocksdb",
		Duration: 5 * kloc.Millisecond, Sanitize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sanitize == nil {
		t.Fatal("no sanitizer report on a -sanitize run")
	}
	if !res.Sanitize.Clean() {
		t.Fatalf("sanitizer dirty:\n%s", res.Sanitize)
	}
	if !strings.Contains(res.Sanitize.String(), "sanitizer:") {
		t.Fatalf("report rendering: %q", res.Sanitize.String())
	}
}

// TestExperimentSmoke drives one real experiment end to end through
// the same entry point main uses, at a tiny scale.
func TestExperimentSmoke(t *testing.T) {
	opts := kloc.Options{ScaleDiv: 256, Duration: 5 * kloc.Millisecond, Seed: 42,
		Workloads: []string{"rocksdb"}}
	tbl, err := kloc.Experiment("fig2d", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "rocksdb") {
		t.Fatalf("table missing workload row:\n%s", tbl)
	}
}

func TestResolveExperimentsPerf(t *testing.T) {
	names, err := resolveExperiments("perf")
	if err != nil || len(names) != 1 || names[0] != "perf" {
		t.Fatalf("resolve perf = %v, %v", names, err)
	}
	// perf is an extra: 'all' must not pull it in.
	names, err = resolveExperiments("all,perf")
	if err != nil {
		t.Fatal(err)
	}
	if want := len(kloc.ExperimentNames()) + 1; len(names) != want {
		t.Fatalf("all,perf = %d experiments, want %d: %v", len(names), want, names)
	}
	if names[len(names)-1] != "perf" {
		t.Fatalf("perf not appended after 'all': %v", names)
	}
}

// TestPerfBenchSmoke drives -exp perf end to end through the same
// entry point main uses: quick sweep, report written, schema intact,
// wall metrics kept out of the artifact by default.
func TestPerfBenchSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_perf.json")
	opts := kloc.Options{Seed: 42}
	if err := runPerfBench(opts, true, false, out); err != nil {
		// The sanity gate times real code under a real clock; on a noisy
		// test machine "slower than baseline" is load, not a bug. The
		// artifact is written before the gate, so the schema checks
		// below still run. Any other error is a genuine failure.
		if !strings.Contains(err.Error(), "slower than baseline") {
			t.Fatal(err)
		}
		t.Logf("sanity gate tripped on a loaded machine: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep kloc.PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if rep.SchemaVersion != kloc.PerfSchemaVersion {
		t.Fatalf("schema %d, want %d", rep.SchemaVersion, kloc.PerfSchemaVersion)
	}
	if !rep.Quick || rep.Seed != 42 {
		t.Fatalf("config not reflected: quick=%v seed=%d", rep.Quick, rep.Seed)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no rows in artifact")
	}
	for _, row := range rep.Rows {
		if row.Wall != nil {
			t.Fatalf("wall metrics leaked into the default artifact (%s/%s)", row.Stage, row.Variant)
		}
	}
}
