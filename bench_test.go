// Benchmarks that regenerate every table and figure of the paper's
// evaluation (DESIGN.md §4 maps each to its experiment). Each benchmark
// executes the full experiment per iteration and logs the rendered
// table, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation at bench fidelity (QuickOptions). Use
// cmd/klocbench for full-fidelity runs of individual experiments.
package kloc_test

import (
	"testing"

	"kloc"
)

// benchOptions bounds wall time on the benchmark path: Fig 6 alone is a
// 9-point sweep with four strategies each.
func benchOptions() kloc.Options {
	return kloc.QuickOptions()
}

func runExperiment(b *testing.B, name string, opts kloc.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		table, err := kloc.Experiment(name, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", table)
		}
	}
}

// BenchmarkFig2a regenerates Figure 2a (kernel vs app footprint).
func BenchmarkFig2a(b *testing.B) { runExperiment(b, "fig2a", benchOptions()) }

// BenchmarkFig2b regenerates Figure 2b (allocation shares, small/large).
func BenchmarkFig2b(b *testing.B) { runExperiment(b, "fig2b", benchOptions()) }

// BenchmarkFig2c regenerates Figure 2c (memory-reference split).
func BenchmarkFig2c(b *testing.B) { runExperiment(b, "fig2c", benchOptions()) }

// BenchmarkFig2d regenerates Figure 2d (object lifetimes).
func BenchmarkFig2d(b *testing.B) { runExperiment(b, "fig2d", benchOptions()) }

// BenchmarkFig4 regenerates Figure 4 (two-tier speedups).
func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4", benchOptions()) }

// BenchmarkTable6 regenerates Table 6 (KLOC metadata overhead).
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6", benchOptions()) }

// BenchmarkFig5a regenerates Figure 5a (Optane Memory-Mode speedups).
func BenchmarkFig5a(b *testing.B) { runExperiment(b, "fig5a", benchOptions()) }

// BenchmarkFig5b regenerates Figure 5b (slow-memory allocations and
// migrations for RocksDB).
func BenchmarkFig5b(b *testing.B) { runExperiment(b, "fig5b", benchOptions()) }

// BenchmarkFig5c regenerates Figure 5c (kernel-object group
// sensitivity).
func BenchmarkFig5c(b *testing.B) { runExperiment(b, "fig5c", benchOptions()) }

// BenchmarkFig6 regenerates Figure 6 (capacity/bandwidth sweep). The
// bench restricts the workload set to bound wall time; klocbench runs
// the full set.
func BenchmarkFig6(b *testing.B) {
	opts := benchOptions()
	opts.Workloads = []string{"rocksdb", "redis"}
	runExperiment(b, "fig6", opts)
}

// BenchmarkPrefetch regenerates the §7.3 readahead study.
func BenchmarkPrefetch(b *testing.B) { runExperiment(b, "prefetch", benchOptions()) }

// Ablation benches for the design choices DESIGN.md calls out.

func benchAblation(b *testing.B, mod func(*kloc.KLOCConfig), workload string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := kloc.DefaultKLOCConfig()
		mod(&cfg)
		opts := benchOptions()
		res, err := kloc.Run(kloc.RunConfig{
			Policy:     kloc.NewKLOCs(cfg),
			PolicyName: "klocs",
			Workload:   workload,
			ScaleDiv:   opts.ScaleDiv,
			Duration:   opts.Duration,
			Seed:       opts.Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Throughput, "sim-ops/sec")
	}
}

// BenchmarkAblationPerCPU disables the §4.3 per-CPU knode fast path.
func BenchmarkAblationPerCPU(b *testing.B) {
	benchAblation(b, func(c *kloc.KLOCConfig) { c.FastPath = false }, "rocksdb")
}

// BenchmarkAblationSplitTree collapses rbtree-cache/rbtree-slab into a
// single tree (the design §4.2.3 rejects).
func BenchmarkAblationSplitTree(b *testing.B) {
	benchAblation(b, func(c *kloc.KLOCConfig) { c.SplitTrees = false }, "rocksdb")
}

// BenchmarkAblationSockExtract moves socket association back to the
// TCP layer (§4.2.3 late demux).
func BenchmarkAblationSockExtract(b *testing.B) {
	benchAblation(b, func(c *kloc.KLOCConfig) { c.DriverExtract = false }, "redis")
}

// BenchmarkAblationKnodeAlloc keeps slab-class kernel objects on the
// pinned slab allocator (§4.4 relocatability ablation).
func BenchmarkAblationKnodeAlloc(b *testing.B) {
	benchAblation(b, func(c *kloc.KLOCConfig) { c.RelocatableSlabs = false }, "rocksdb")
}

// BenchmarkFullDesign is the reference point for the ablations.
func BenchmarkFullDesign(b *testing.B) {
	benchAblation(b, func(*kloc.KLOCConfig) {}, "rocksdb")
}

// BenchmarkRawRun measures one klocs/rocksdb run end to end — the
// simulator's own performance, for profiling the reproduction itself.
func BenchmarkRawRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := kloc.Run(kloc.RunConfig{
			PolicyName: "klocs",
			Workload:   "rocksdb",
			ScaleDiv:   256,
			Duration:   10 * kloc.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Ops), "sim-ops")
	}
}

// BenchmarkTHP tests the §5 hypothesis: with transparent huge pages
// backing the application heap, KLOCs should retain (or improve) its
// gains because whole 2 MB regions tier as units.
func BenchmarkTHP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := benchOptions()
		for _, huge := range []bool{false, true} {
			res, err := kloc.Run(kloc.RunConfig{
				PolicyName: "klocs",
				Workload:   "redis",
				ScaleDiv:   opts.ScaleDiv,
				Duration:   opts.Duration,
				Seed:       opts.Seed,
				WLConfig:   kloc.WorkloadConfig{HugePages: huge},
			})
			if err != nil {
				b.Fatal(err)
			}
			label := "base-ops/sec"
			if huge {
				label = "thp-ops/sec"
			}
			b.ReportMetric(res.Throughput, label)
		}
	}
}
